// Package schedcheck statically verifies compiled communication schedules
// against the paper's structural invariants — without running the machine.
// Where the simulator exercises one (input, seed) point per test, the checker
// walks every step of every schedule dcomm.Compiled can produce and proves
// table-level properties that hold for all runs:
//
//   - partner tables are involutions: every exchange step is a perfect
//     matching, so the 1-port model is respected (at most one link per node
//     per step) and SendRecv pairs agree;
//   - cluster steps pair along the declared cluster dimension and stay inside
//     a class; the cross step pairs each node with its opposite-class twin;
//   - link indexes point at the partner inside the node's ascending neighbor
//     row, so the interpreter's table fast path and the engine's CSR rows name
//     the same wire;
//   - the prefix schedule fits Theorem 1: 2n communication steps plus one
//     local combine, total 2n+1;
//   - the sort schedule fits Theorem 2: Algorithm 3's merge ladder in exactly
//     DSortCompSteps(n) = 2n²-n compare-exchange steps whose communication
//     cost is exactly DSortCommSteps(n) = 6n²-7n+2 cycles (each StepRecDim
//     is the 3-cycle routed exchange), with every recursive-dimension
//     matching the involution r ↔ r^(1<<j); the hypercube baseline fits
//     q(q+1)/2 single-cycle steps;
//   - fault rewrites (dcomm.RewriteFT) annotate exactly the severed pairs of
//     each matching, repair them over alive simple detours of at most 7 hops
//     (for f <= n-1 faults), and account RepairCycles exactly — and refuse
//     the recursive-technique sort schedules, whose 3-cycle choreography has
//     no static detour form.
//
// cmd/dcvet runs Verify over n = 2..7 alongside the source analyzers, making
// "every schedule the runtime can compile is well-formed" part of vetting.
package schedcheck

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// maxDetourHops bounds a repair path under f <= n-1 link faults. A severed
// cluster link has m-1 alternate in-cluster detours of 3 hops (flip another
// cluster dimension, the severed one, flip back). A severed cross link is the
// hard case: a detour must cross between classes three times (a class-0
// segment only moves field part I, a class-1 segment only part II, so the
// class bit needs crossings and each field excursion needs undoing), making
// its shortest detour exactly 7 hops — also the exact length for D_2, which
// is an 8-ring whose only detour is the long way around. The checker enforces
// 7 as the ceiling across the verified fault battery; Theorem 2's claim that
// degraded-mode overhead stays a constant number of cycles per fault rests on
// this not regressing.
const maxDetourHops = 7

// Check compiles op on c and verifies the fault-free schedule's structure.
func Check(c topology.Comm, op dcomm.Op) error {
	sch, err := dcomm.Compiled(c, op)
	if err != nil {
		return err
	}
	if err := CheckSchedule(sch, c, op); err != nil {
		return err
	}
	if sch.RepairCycles != 0 {
		return fmt.Errorf("schedcheck: %s: fault-free schedule has RepairCycles %d", sch.Name, sch.RepairCycles)
	}
	for i := range sch.Steps {
		if s := &sch.Steps[i]; s.Broken != nil || s.Detours != nil {
			return fmt.Errorf("schedcheck: %s step %d: fault-free schedule carries fault annotations", sch.Name, i)
		}
	}
	return nil
}

// stepShape is one expected step of an operation's skeleton.
type stepShape struct {
	kind machine.StepKind
	dim  int // cluster dimension, or -1
}

// shapeOf lays out the expected step sequence of op on a cube with cluster
// dimension m — the cluster-technique skeleton the paper's algorithms share.
func shapeOf(op dcomm.Op, m int) ([]stepShape, error) {
	var steps []stepShape
	cluster := func(dim int) { steps = append(steps, stepShape{machine.StepClusterDim, dim}) }
	ascend := func() {
		for i := 0; i < m; i++ {
			cluster(i)
		}
	}
	descend := func() {
		for i := m - 1; i >= 0; i-- {
			cluster(i)
		}
	}
	cross := func() { steps = append(steps, stepShape{machine.StepCrossHop, -1}) }
	local := func() { steps = append(steps, stepShape{machine.StepLocalCombine, -1}) }
	switch op {
	case dcomm.OpPrefix, dcomm.OpAllReduce, dcomm.OpAllGather:
		ascend()
		cross()
		ascend()
		cross()
		local()
	case dcomm.OpBroadcast, dcomm.OpAllToAll:
		ascend()
		cross()
		ascend()
		cross()
	case dcomm.OpGather:
		descend()
		cross()
		descend()
		cross()
	case dcomm.OpScatter:
		cross()
		ascend()
		cross()
		ascend()
	default:
		return nil, fmt.Errorf("schedcheck: no expected shape for %s", op)
	}
	return steps, nil
}

// CheckSchedule verifies sch's step sequence and finalized exchange tables
// against c and op's expected skeleton, generically over any communication
// topology (dual-cube, hypercube, Z-cube): every invariant is phrased in
// terms of the Comm decomposition, so one proof covers all families. It
// accepts a fault-rewritten variant too (annotations are CheckFT's
// business); structural invariants are identical for both.
func CheckSchedule(sch *machine.Schedule, c topology.Comm, op dcomm.Op) error {
	n, m, N := c.Order(), c.ClusterDim(), c.Nodes()
	if sch.D != c {
		return fmt.Errorf("schedcheck: %s: schedule bound to %s, want %s", sch.Name, sch.D.Name(), c.Name())
	}
	shape, err := shapeOf(op, m)
	if err != nil {
		return err
	}
	if len(sch.Steps) != len(shape) {
		return fmt.Errorf("schedcheck: %s: %d steps, want %d", sch.Name, len(sch.Steps), len(shape))
	}
	if got := sch.CommSteps(); got != 2*n {
		return fmt.Errorf("schedcheck: %s: %d communication steps, want 2n = %d", sch.Name, got, 2*n)
	}
	if len(sch.Steps) > 2*n+1 {
		return fmt.Errorf("schedcheck: %s: %d total steps exceed the Theorem 1 budget 2n+1 = %d", sch.Name, len(sch.Steps), 2*n+1)
	}

	// Steps sharing a pattern must share the finalized tables (one matching,
	// one plan); remember the first occurrence to compare against.
	firstByPattern := make(map[int]*machine.Step, m+1)
	patternUses := make(map[int]int, m+1)

	for i := range sch.Steps {
		s := &sch.Steps[i]
		want := shape[i]
		if s.Kind != want.kind {
			return fmt.Errorf("schedcheck: %s step %d: kind %s, want %s", sch.Name, i, s.Kind, want.kind)
		}
		switch s.Kind {
		case machine.StepLocalCombine:
			continue
		case machine.StepClusterDim:
			if s.Dim != want.dim {
				return fmt.Errorf("schedcheck: %s step %d: dimension %d, want %d", sch.Name, i, s.Dim, want.dim)
			}
			if s.Pattern != s.Dim {
				return fmt.Errorf("schedcheck: %s step %d: pattern %d, want dimension %d", sch.Name, i, s.Pattern, s.Dim)
			}
		case machine.StepCrossHop:
			if s.Pattern != m {
				return fmt.Errorf("schedcheck: %s step %d: cross pattern %d, want %d", sch.Name, i, s.Pattern, m)
			}
		}
		patternUses[s.Pattern]++

		partners, links := s.Partners(), s.LinkIndexes()
		if partners == nil || links == nil {
			return fmt.Errorf("schedcheck: %s step %d: schedule not finalized (nil exchange tables)", sch.Name, i)
		}
		if len(partners) != N || len(links) != N {
			return fmt.Errorf("schedcheck: %s step %d: table length %d/%d, want %d", sch.Name, i, len(partners), len(links), N)
		}
		if first, ok := firstByPattern[s.Pattern]; ok {
			if &first.Partners()[0] != &partners[0] || &first.LinkIndexes()[0] != &links[0] {
				return fmt.Errorf("schedcheck: %s step %d: pattern %d tables not shared with earlier step", sch.Name, i, s.Pattern)
			}
			continue // shared tables were already verified node by node
		}
		firstByPattern[s.Pattern] = s

		for u := 0; u < N; u++ {
			p := int(partners[u])
			if p < 0 || p >= N {
				return fmt.Errorf("schedcheck: %s step %d: node %d partner %d out of range", sch.Name, i, u, p)
			}
			if p == u {
				return fmt.Errorf("schedcheck: %s step %d: node %d paired with itself", sch.Name, i, u)
			}
			if int(partners[p]) != u {
				return fmt.Errorf("schedcheck: %s step %d: matching not an involution at %d: partner %d pairs back to %d", sch.Name, i, u, p, partners[p])
			}
			var expect int
			if s.Kind == machine.StepClusterDim {
				expect = c.ClusterNeighbor(u, s.Dim)
				if c.Class(p) != c.Class(u) || !c.SameCluster(u, p) {
					return fmt.Errorf("schedcheck: %s step %d: cluster step pairs %d outside %d's cluster", sch.Name, i, p, u)
				}
			} else {
				expect = c.CrossNeighbor(u)
				if c.Class(p) == c.Class(u) {
					return fmt.Errorf("schedcheck: %s step %d: cross step pairs %d and %d of the same class", sch.Name, i, u, p)
				}
			}
			if p != expect {
				return fmt.Errorf("schedcheck: %s step %d: node %d partner %d, want %d", sch.Name, i, u, p, expect)
			}
			row := c.Neighbors(u)
			li := int(links[u])
			if li < 0 || li >= len(row) || row[li] != p {
				return fmt.Errorf("schedcheck: %s step %d: node %d link index %d does not select partner %d", sch.Name, i, u, li, p)
			}
		}
	}

	// Every exchange pattern — each cluster dimension and the cross matching —
	// appears exactly twice: once per half of the cluster-technique skeleton.
	for pat := 0; pat <= m; pat++ {
		if patternUses[pat] != 2 {
			return fmt.Errorf("schedcheck: %s: pattern %d used %d times, want 2", sch.Name, pat, patternUses[pat])
		}
	}
	return nil
}

// CheckSortSchedule verifies the compiled D_sort schedule against Theorem 2:
// Algorithm 3's flattened merge ladder — the level-1 base sort, then per
// level l = 2..n a half-merge over dims 2l-3..0 and a final merge over dims
// 2l-2..0 — as exactly DSortCompSteps(n) = 2n²-n compare-exchange steps
// whose communication cost is exactly DSortCommSteps(n) = 6n²-7n+2 cycles:
// one cycle per dimension-0 cross hop, three per StepRecDim. Each recursive
// dimension's matching must be the involution r ↔ r^(1<<j) in recursive-ID
// space, finalized partner-only (routed pairs are not adjacent, so there is
// no link table), and the fault-free schedule must carry no annotations.
// Generic over any topology carrying the recursive presentation.
func CheckSortSchedule(sch *machine.Schedule, c topology.Recursive) error {
	n, m, N := c.Order(), c.ClusterDim(), c.Nodes()
	if sch.D != topology.Comm(c) {
		return fmt.Errorf("schedcheck: %s: schedule bound to %s, want %s", sch.Name, sch.D.Name(), c.Name())
	}

	// The expected dimension ladder of Algorithm 3.
	var dims []int
	dims = append(dims, 0)
	for l := 2; l <= n; l++ {
		for j := 2*l - 3; j >= 0; j-- {
			dims = append(dims, j)
		}
		for j := 2*l - 2; j >= 0; j-- {
			dims = append(dims, j)
		}
	}
	if len(dims) != sortnet.DSortCompSteps(n) {
		return fmt.Errorf("schedcheck: internal: D_%d ladder has %d steps, closed form says %d", n, len(dims), sortnet.DSortCompSteps(n))
	}
	if len(sch.Steps) != len(dims) {
		return fmt.Errorf("schedcheck: %s: %d steps, want 2n²-n = %d", sch.Name, len(sch.Steps), len(dims))
	}
	if got := sch.CommSteps(); got != len(dims) {
		return fmt.Errorf("schedcheck: %s: %d communication steps, want %d (every step exchanges)", sch.Name, got, len(dims))
	}
	if got, want := sch.CommCycles(), sortnet.DSortCommSteps(n); got != want {
		return fmt.Errorf("schedcheck: %s: %d communication cycles, want 6n²-7n+2 = %d (Theorem 2)", sch.Name, got, want)
	}
	if sch.RepairCycles != 0 {
		return fmt.Errorf("schedcheck: %s: fault-free schedule has RepairCycles %d", sch.Name, sch.RepairCycles)
	}

	firstByPattern := make(map[int]*machine.Step, 2*n-1)
	for i := range sch.Steps {
		s := &sch.Steps[i]
		if s.Broken != nil || s.Detours != nil {
			return fmt.Errorf("schedcheck: %s step %d: fault-free schedule carries fault annotations", sch.Name, i)
		}
		j := dims[i]
		if j == 0 {
			if s.Kind != machine.StepCrossHop {
				return fmt.Errorf("schedcheck: %s step %d: kind %s, want %s for dimension 0", sch.Name, i, s.Kind, machine.StepCrossHop)
			}
			if s.Pattern != m {
				return fmt.Errorf("schedcheck: %s step %d: cross pattern %d, want %d", sch.Name, i, s.Pattern, m)
			}
		} else {
			if s.Kind != machine.StepRecDim {
				return fmt.Errorf("schedcheck: %s step %d: kind %s, want %s for dimension %d", sch.Name, i, s.Kind, machine.StepRecDim, j)
			}
			if s.Dim != j {
				return fmt.Errorf("schedcheck: %s step %d: dimension %d, want %d", sch.Name, i, s.Dim, j)
			}
			if s.Pattern != m+j {
				return fmt.Errorf("schedcheck: %s step %d: pattern %d, want m+j = %d", sch.Name, i, s.Pattern, m+j)
			}
		}

		partners := s.Partners()
		if partners == nil {
			return fmt.Errorf("schedcheck: %s step %d: schedule not finalized (nil partner table)", sch.Name, i)
		}
		if len(partners) != N {
			return fmt.Errorf("schedcheck: %s step %d: table length %d, want %d", sch.Name, i, len(partners), N)
		}
		if first, ok := firstByPattern[s.Pattern]; ok {
			if &first.Partners()[0] != &partners[0] {
				return fmt.Errorf("schedcheck: %s step %d: pattern %d tables not shared with earlier step", sch.Name, i, s.Pattern)
			}
			continue // shared tables were already verified node by node
		}
		firstByPattern[s.Pattern] = s

		for u := 0; u < N; u++ {
			p := int(partners[u])
			if p < 0 || p >= N {
				return fmt.Errorf("schedcheck: %s step %d: node %d partner %d out of range", sch.Name, i, u, p)
			}
			if p == u {
				return fmt.Errorf("schedcheck: %s step %d: node %d paired with itself", sch.Name, i, u)
			}
			if int(partners[p]) != u {
				return fmt.Errorf("schedcheck: %s step %d: matching not an involution at %d: partner %d pairs back to %d", sch.Name, i, u, p, partners[p])
			}
			expect := c.FromRecursive(c.ToRecursive(u) ^ 1<<j)
			if p != expect {
				return fmt.Errorf("schedcheck: %s step %d: node %d partner %d, want recursive-dimension-%d partner %d", sch.Name, i, u, p, j, expect)
			}
			if j == 0 {
				// Dimension 0 is the cross matching: adjacent, with a link
				// table the interpreter's fast path uses.
				if p != c.CrossNeighbor(u) {
					return fmt.Errorf("schedcheck: %s step %d: node %d cross partner %d, want %d", sch.Name, i, u, p, c.CrossNeighbor(u))
				}
				links := s.LinkIndexes()
				if links == nil {
					return fmt.Errorf("schedcheck: %s step %d: cross step has no link table", sch.Name, i)
				}
				row := c.Neighbors(u)
				li := int(links[u])
				if li < 0 || li >= len(row) || row[li] != p {
					return fmt.Errorf("schedcheck: %s step %d: node %d link index %d does not select partner %d", sch.Name, i, u, li, p)
				}
			} else if s.LinkIndexes() != nil {
				return fmt.Errorf("schedcheck: %s step %d: recursive-dimension step carries a link table (routed pairs are not adjacent)", sch.Name, i)
			}
		}
	}
	return nil
}

// CheckCubeSortSchedule verifies the compiled hypercube bitonic-sort
// schedule: stages k = 1..q sweeping StepBitDim exchanges over dimensions
// k-1..0 — q(q+1)/2 steps of one cycle each — with every matching the
// hypercube involution u ↔ u^(1<<j) over an adjacent link.
func CheckCubeSortSchedule(sch *machine.Schedule, h *topology.Hypercube) error {
	q, N := h.Dim(), h.Nodes()
	if sch.Topology() != topology.Topology(h) {
		return fmt.Errorf("schedcheck: %s: schedule bound to the wrong topology", sch.Name)
	}
	var dims []int
	for k := 1; k <= q; k++ {
		for j := k - 1; j >= 0; j-- {
			dims = append(dims, j)
		}
	}
	if len(sch.Steps) != len(dims) || len(dims) != sortnet.CubeSortSteps(q) {
		return fmt.Errorf("schedcheck: %s: %d steps, want q(q+1)/2 = %d", sch.Name, len(sch.Steps), sortnet.CubeSortSteps(q))
	}
	if got := sch.CommCycles(); got != len(dims) {
		return fmt.Errorf("schedcheck: %s: %d communication cycles, want %d", sch.Name, got, len(dims))
	}
	firstByPattern := make(map[int]*machine.Step, q)
	for i := range sch.Steps {
		s := &sch.Steps[i]
		if s.Kind != machine.StepBitDim || s.Dim != dims[i] || s.Pattern != dims[i] {
			return fmt.Errorf("schedcheck: %s step %d: got (%s dim %d pattern %d), want (%s dim %d pattern %d)", sch.Name, i, s.Kind, s.Dim, s.Pattern, machine.StepBitDim, dims[i], dims[i])
		}
		partners, links := s.Partners(), s.LinkIndexes()
		if partners == nil || links == nil {
			return fmt.Errorf("schedcheck: %s step %d: schedule not finalized (nil exchange tables)", sch.Name, i)
		}
		if first, ok := firstByPattern[s.Pattern]; ok {
			if &first.Partners()[0] != &partners[0] {
				return fmt.Errorf("schedcheck: %s step %d: pattern %d tables not shared with earlier step", sch.Name, i, s.Pattern)
			}
			continue
		}
		firstByPattern[s.Pattern] = s
		for u := 0; u < N; u++ {
			p := int(partners[u])
			if p != u^1<<dims[i] {
				return fmt.Errorf("schedcheck: %s step %d: node %d partner %d, want %d", sch.Name, i, u, p, u^1<<dims[i])
			}
			row := h.Neighbors(u)
			li := int(links[u])
			if li < 0 || li >= len(row) || row[li] != p {
				return fmt.Errorf("schedcheck: %s step %d: node %d link index %d does not select partner %d", sch.Name, i, u, li, p)
			}
		}
	}
	return nil
}

// CheckFT verifies a RewriteFT output against its base schedule and fault
// view: annotations mark exactly the severed pairs, detours repair them over
// alive simple paths in canonical order, and the repair-cycle account is
// exact. f is the plan's link-fault budget; for f <= n-1 the detour length
// bound of maxDetourHops is enforced.
func CheckFT(ft, base *machine.Schedule, view *fault.View, f int) error {
	d := base.D
	n, N := d.Order(), d.Nodes()
	if view.Clean() {
		if ft != base {
			return fmt.Errorf("schedcheck: %s: clean view must return the base schedule unchanged", ft.Name)
		}
		return nil
	}
	if ft == base {
		return fmt.Errorf("schedcheck: %s: faulty view returned the shared base schedule", base.Name)
	}
	if ft.D != d {
		return fmt.Errorf("schedcheck: %s: rewrite bound to %s, want %s", ft.Name, ft.D.Name(), d.Name())
	}
	if len(ft.Steps) != len(base.Steps) {
		return fmt.Errorf("schedcheck: %s: rewrite has %d steps, base %d", ft.Name, len(ft.Steps), len(base.Steps))
	}

	wantRepair := 0
	for i := range ft.Steps {
		s, b := &ft.Steps[i], &base.Steps[i]
		if s.Kind != b.Kind || s.Dim != b.Dim || s.Pattern != b.Pattern {
			return fmt.Errorf("schedcheck: %s step %d: rewrite altered the step skeleton", ft.Name, i)
		}
		if s.Kind == machine.StepLocalCombine {
			continue
		}
		partners := s.Partners()
		if partners == nil || &partners[0] != &b.Partners()[0] {
			return fmt.Errorf("schedcheck: %s step %d: rewrite does not share the base exchange tables", ft.Name, i)
		}

		// The severed pairs of this matching, normalized u < partner.
		severed := make(map[[2]int]bool)
		for u := 0; u < N; u++ {
			p := int(partners[u])
			if u < p && view.LinkDown(u, p) {
				severed[[2]int{u, p}] = true
			}
		}
		if len(severed) == 0 {
			if s.Broken != nil || s.Detours != nil {
				return fmt.Errorf("schedcheck: %s step %d: annotations on an unsevered matching", ft.Name, i)
			}
			continue
		}
		if s.Broken == nil {
			return fmt.Errorf("schedcheck: %s step %d: matching severed %d pair(s) but carries no annotations", ft.Name, i, len(severed))
		}
		for u := 0; u < N; u++ {
			down := view.LinkDown(u, int(partners[u]))
			if s.Broken[u] != down {
				return fmt.Errorf("schedcheck: %s step %d: Broken[%d] = %v, want %v", ft.Name, i, u, s.Broken[u], down)
			}
		}
		if len(s.Detours) != len(severed) {
			return fmt.Errorf("schedcheck: %s step %d: %d detours for %d severed pairs", ft.Name, i, len(s.Detours), len(severed))
		}
		prevU, prevV := -1, -1
		for k := range s.Detours {
			dt := &s.Detours[k]
			if err := checkDetour(d, view, dt, severed, n, f); err != nil {
				return fmt.Errorf("schedcheck: %s step %d detour %d: %w", ft.Name, i, k, err)
			}
			u, v := dt.Path[0], dt.Path[len(dt.Path)-1]
			if u < prevU || (u == prevU && v <= prevV) {
				return fmt.Errorf("schedcheck: %s step %d: detours not in canonical endpoint order", ft.Name, i)
			}
			prevU, prevV = u, v
			delete(severed, [2]int{u, v})
			wantRepair += 2 * (len(dt.Path) - 1)
		}
		if len(severed) != 0 {
			return fmt.Errorf("schedcheck: %s step %d: %d severed pair(s) left without a detour", ft.Name, i, len(severed))
		}
	}

	if ft.RepairCycles != wantRepair {
		return fmt.Errorf("schedcheck: %s: RepairCycles %d, want %d (sum of 2·hops over step detours)", ft.Name, ft.RepairCycles, wantRepair)
	}
	// Each pattern appears twice and a link belongs to one pattern, so f
	// faults sever at most f pairs, each repaired twice per schedule over at
	// most maxDetourHops hops each way.
	if f <= n-1 {
		if limit := 2 * 2 * maxDetourHops * f; ft.RepairCycles > limit {
			return fmt.Errorf("schedcheck: %s: RepairCycles %d exceed the f<=n-1 bound %d", ft.Name, ft.RepairCycles, limit)
		}
	}
	return nil
}

// checkDetour verifies one repair relay: endpoints are a severed pair of the
// step's matching, the path is a simple alive walk of adjacent nodes joining
// them, Back is its exact reverse, and under the paper's fault budget the
// length respects the maxDetourHops ceiling.
func checkDetour(d topology.Comm, view *fault.View, dt *machine.Detour, severed map[[2]int]bool, n, f int) error {
	if len(dt.Path) < 3 {
		return fmt.Errorf("path %v too short to avoid the severed link", dt.Path)
	}
	u, v := dt.Path[0], dt.Path[len(dt.Path)-1]
	if u >= v || !severed[[2]int{u, v}] {
		return fmt.Errorf("endpoints (%d,%d) are not an unclaimed severed pair of this matching", u, v)
	}
	seen := make(map[int]bool, len(dt.Path))
	for i, x := range dt.Path {
		if seen[x] {
			return fmt.Errorf("path %v revisits node %d", dt.Path, x)
		}
		seen[x] = true
		if i == 0 {
			continue
		}
		prev := dt.Path[i-1]
		if !d.HasEdge(prev, x) {
			return fmt.Errorf("path %v hops %d->%d across a non-edge", dt.Path, prev, x)
		}
		if view.LinkDown(prev, x) {
			return fmt.Errorf("path %v relays over the down link %d-%d", dt.Path, prev, x)
		}
	}
	if len(dt.Back) != len(dt.Path) {
		return fmt.Errorf("Back length %d != Path length %d", len(dt.Back), len(dt.Path))
	}
	for i, x := range dt.Back {
		if x != dt.Path[len(dt.Path)-1-i] {
			return fmt.Errorf("Back %v is not Path %v reversed", dt.Back, dt.Path)
		}
	}
	if f <= n-1 && len(dt.Path)-1 > maxDetourHops {
		return fmt.Errorf("detour %v takes %d hops, over the %d-hop ceiling for %d faults on %s", dt.Path, len(dt.Path)-1, maxDetourHops, f, d.Name())
	}
	return nil
}

// ftSeeds are the fault plans exercised per (order, op): the repository's
// standard experiment seed and one contrasting draw.
var ftSeeds = []int64{2008, 42}

// Verify runs the full static battery for every communication family
// (dual-cube, hypercube, Z-cube) at every order in [minOrder, maxOrder]:
// all cluster-technique operations' fault-free schedules plus RewriteFT
// variants under f = 1 and f = n-1 random link faults per seed; the D_sort
// schedule against Theorem 2's exact step and cycle counts, with the
// assertion that RewriteFT refuses to annotate it; and the hypercube
// bitonic-sort baseline for every q up to 2·maxOrder-1 (the dimension whose
// node count matches D_maxOrder). The f = n-1 fault budget is sound on all
// three families because each contains D_n as a spanning subgraph, so its
// link connectivity is at least n (λ(D_n) = n per Zhao/Hao/Cheng).
func Verify(minOrder, maxOrder int) error {
	for _, family := range topology.Families() {
		for n := minOrder; n <= maxOrder; n++ {
			c, err := topology.CommByID(family, n)
			if err != nil {
				return err
			}
			if err := VerifyComm(c); err != nil {
				return err
			}
		}
	}
	for q := 0; q <= 2*maxOrder-1; q++ {
		h, err := topology.NewHypercube(q)
		if err != nil {
			return err
		}
		sch, err := dcomm.CompiledCubeSort(h)
		if err != nil {
			return err
		}
		if err := CheckCubeSortSchedule(sch, h); err != nil {
			return err
		}
	}
	return nil
}

// VerifyComm runs the per-topology battery on one communication topology:
// every operation's fault-free schedule, the Theorem 2 sort ladder, and the
// fault-rewrite checks under the standard seeds and budgets.
func VerifyComm(c topology.Comm) error {
	n := c.Order()
	for op := dcomm.OpPrefix; op < dcomm.OpEnd; op++ {
		base, err := dcomm.Compiled(c, op)
		if err != nil {
			return err
		}
		if op == dcomm.OpDSort {
			r, ok := c.(topology.Recursive)
			if !ok {
				return fmt.Errorf("schedcheck: %s compiled a sort schedule without a recursive presentation", c.Name())
			}
			if err := CheckSortSchedule(base, r); err != nil {
				return err
			}
			// The recursive-technique choreography has no static detour
			// form; the rewrite must refuse, never mis-annotate.
			view := fault.NewView(c, fault.Random(c, 1, ftSeeds[0]))
			if _, err := dcomm.RewriteFT(base, view); err == nil {
				return fmt.Errorf("schedcheck: %s: RewriteFT accepted a recursive-technique schedule", base.Name)
			}
			continue
		}
		if err := Check(c, op); err != nil {
			return err
		}
		for _, f := range faultBudgets(n) {
			for _, seed := range ftSeeds {
				view := fault.NewView(c, fault.Random(c, f, seed))
				ft, err := dcomm.RewriteFT(base, view)
				if err != nil {
					return fmt.Errorf("schedcheck: %s f=%d seed=%d: %w", base.Name, f, seed, err)
				}
				if err := CheckFT(ft, base, view, f); err != nil {
					return fmt.Errorf("f=%d seed=%d: %w", f, seed, err)
				}
				if err := CheckSchedule(ft, c, op); err != nil {
					return fmt.Errorf("f=%d seed=%d: %w", f, seed, err)
				}
			}
		}
	}
	return nil
}

// faultBudgets returns the link-fault counts verified per order: a single
// fault and the paper's maximum tolerated budget n-1.
func faultBudgets(n int) []int {
	if n <= 2 {
		return []int{1}
	}
	return []int{1, n - 1}
}
