package dualcube

import (
	"cmp"
	"fmt"

	"dualcube/internal/collective"
	"dualcube/internal/dcomm"
	"dualcube/internal/embedding"
	"dualcube/internal/monoid"
	"dualcube/internal/ntt"
	"dualcube/internal/prefix"
	"dualcube/internal/samplesort"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// Runtime is a reusable execution handle for one D_n. It binds the
// process-wide cached topology (one immutable *DualCube per order, shared by
// every caller) and fronts the simulator's engine recycling pool, so a warm
// Runtime executes operations with zero topology or engine construction:
// the first run of an operation at a given element type builds its engine
// and compiles its cluster-technique schedule; every later run checks both
// out of their caches.
//
// A Runtime is safe for concurrent use: the topology and the compiled
// schedules are immutable, and checked-out engines are exclusive to one run
// (the pool hands each engine to at most one caller at a time), so
// concurrent operations on the same Runtime never share mutable state.
//
// Because Go does not allow type parameters on methods, the generic
// operations are free functions taking the Runtime first — PrefixOn(rt, in),
// SortOn(rt, keys, ord), and so on. The package-level one-shot functions
// (Prefix, Sort, ...) are thin wrappers over a package-default Runtime per
// order, so both styles share the same caches.
type Runtime struct {
	// c is the bound communication topology — the dual-cube by default, or
	// whichever family NewRuntimeOn selected. Every generalized operation
	// (prefix, sort, broadcast, all-reduce) routes through it.
	c topology.Comm
	// d is the concrete dual-cube when c is the dualcube family, nil
	// otherwise; operations not yet generalized beyond the dual-cube
	// require it and reject other families with a clear error.
	d *topology.DualCube
}

// NewRuntime returns the execution handle for D_n (1 <= n <= 14). The
// handle is cheap — it wraps the shared cached topology — so holding one
// per subsystem or creating them on the fly are equally fine; all handles
// of the same order share every cache.
func NewRuntime(n int) (*Runtime, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	return &Runtime{c: d, d: d}, nil
}

// Families returns the topology family identifiers NewRuntimeOn accepts, in
// stable order: "dualcube", "hypercube", "zcube".
func Families() []string { return topology.Families() }

// NewRuntimeOn returns the execution handle for one communication topology:
// family is "dualcube", "hypercube" (Q_{2n-1}) or "zcube" (Z_n), and n the
// dual-cube order, so all three handles of the same order run over the same
// node count 2^(2n-1) and the same block data layout. The cluster-technique
// operations — Prefix, Sort, Broadcast, AllReduce and their Func variants —
// run on any family; the remaining operations are dual-cube-only for now
// and return an error on other families.
func NewRuntimeOn(family string, n int) (*Runtime, error) {
	c, err := topology.CommByID(family, n)
	if err != nil {
		return nil, err
	}
	d, _ := c.(*topology.DualCube)
	return &Runtime{c: c, d: d}, nil
}

// defaultRuntimes backs the package-level one-shot functions: one Runtime
// per order, built eagerly beside the topology cache so one-shot calls pay
// no lookup synchronization.
var defaultRuntimes [topology.MaxDualCubeOrder + 1]Runtime

func init() {
	for n := 1; n <= topology.MaxDualCubeOrder; n++ {
		d, _ := topology.Shared(n)
		defaultRuntimes[n] = Runtime{c: d, d: d}
	}
}

// defaultRuntime resolves the package-default Runtime for order n.
func defaultRuntime(n int) (*Runtime, error) {
	if n < 1 || n > topology.MaxDualCubeOrder {
		// Delegate the error wording to the shared range check.
		if _, err := topology.Shared(n); err != nil {
			return nil, err
		}
	}
	return &defaultRuntimes[n], nil
}

// Order returns the dual-cube order n of the bound topology.
func (rt *Runtime) Order() int { return rt.c.Order() }

// Nodes returns the number of nodes, 2^(2n-1).
func (rt *Runtime) Nodes() int { return rt.c.Nodes() }

// Family returns the bound topology family: "dualcube", "hypercube" or
// "zcube".
func (rt *Runtime) Family() string { return rt.c.Family() }

// Comm returns the bound communication topology.
func (rt *Runtime) Comm() topology.Comm { return rt.c }

// Network returns the dual-cube topology handle for structural queries, or
// nil when the Runtime is bound to another family (use Comm instead).
func (rt *Runtime) Network() *Network {
	if rt.d == nil {
		return nil
	}
	return &Network{d: rt.d}
}

// dualOrder returns the dual-cube order for operations that have not been
// generalized beyond the dual-cube family, rejecting other topologies.
func (rt *Runtime) dualOrder(op string) (int, error) {
	if rt.d == nil {
		return 0, fmt.Errorf("dualcube: %s is only implemented on the dualcube family, not %s", op, rt.c.Name())
	}
	return rt.d.Order(), nil
}

// recursive returns the bound topology's recursive presentation, which the
// sort family requires.
func (rt *Runtime) recursive(op string) (topology.Recursive, error) {
	if r, ok := rt.c.(topology.Recursive); ok {
		return r, nil
	}
	return nil, fmt.Errorf("dualcube: %s needs a recursive presentation, which %s does not carry", op, rt.c.Name())
}

// Warm pre-compiles the cluster-technique schedules of every collective
// operation for this order. Engines are typed by element, so they warm on
// the first run of each (operation, element type) pair; Warm only removes
// the schedule-compilation cost from that first run. The returned error is
// nil for every operation in the Op enum; it exists so compilation failures
// surface to callers instead of panicking.
func (rt *Runtime) Warm() error {
	for op := dcomm.OpPrefix; op < dcomm.OpEnd; op++ {
		if _, err := dcomm.Compiled(rt.c, op); err != nil {
			return err
		}
	}
	if rt.d != nil {
		// Pre-build the arena layout table the payload-plane collectives
		// index by; like the schedules it is cached per order and shared.
		collective.WarmLayout(rt.d)
	}
	return nil
}

// Barrier synchronizes all nodes of the Runtime's network; it completes
// only after every node has entered it (2n communication steps).
func (rt *Runtime) Barrier() (Stats, error) {
	return collective.BarrierOn(rt.c)
}

// HamiltonianCycle returns a Hamiltonian cycle of the Runtime's network
// (n >= 2): a dilation-1 ring embedding over all 2^(2n-1) nodes. Every
// supported family contains D_n as a spanning subgraph under the identity
// addressing, so the embedded dual-cube cycle is a valid ring on all of
// them.
func (rt *Runtime) HamiltonianCycle() ([]int, error) {
	return embedding.DualCubeHamiltonianCycle(rt.c.Order())
}

// PrefixOn computes all prefix sums of in on rt's network: out[i] =
// in[0]+...+in[i], Algorithm 2 of the paper in 2n communication steps.
func PrefixOn[T monoid.Number](rt *Runtime, in []T) ([]T, Stats, error) {
	return prefix.DPrefixOn(rt.c, in, monoid.Sum[T](), true, nil)
}

// PrefixFuncOn is PrefixOn under an arbitrary associative operation with
// identity; combine is applied strictly in element order. Set inclusive to
// false for the diminished prefix.
func PrefixFuncOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	return prefix.DPrefixOn(rt.c, in, mono(identity, combine), inclusive, nil)
}

// PrefixDegradedOn is PrefixOn on a network degraded by plan's permanent
// link faults; see PrefixDegraded.
func PrefixDegradedOn[T monoid.Number](rt *Runtime, in []T, plan *FaultPlan) ([]T, Stats, error) {
	n, err := rt.dualOrder("PrefixDegraded")
	if err != nil {
		return nil, Stats{}, err
	}
	return prefix.DPrefixDegraded(n, in, monoid.Sum[T](), true, plan)
}

// PrefixDegradedFuncOn is PrefixDegradedOn for an arbitrary monoid.
func PrefixDegradedFuncOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T, inclusive bool, plan *FaultPlan) ([]T, Stats, error) {
	n, err := rt.dualOrder("PrefixDegradedFunc")
	if err != nil {
		return nil, Stats{}, err
	}
	return prefix.DPrefixDegraded(n, in, mono(identity, combine), inclusive, plan)
}

// PrefixLargeOn computes prefix sums of an input with k elements per node.
func PrefixLargeOn[T monoid.Number](rt *Runtime, k int, in []T) ([]T, Stats, error) {
	n, err := rt.dualOrder("PrefixLarge")
	if err != nil {
		return nil, Stats{}, err
	}
	return prefix.DPrefixLarge(n, k, in, monoid.Sum[T](), true)
}

// PrefixLargeFuncOn is PrefixLargeOn for an arbitrary monoid.
func PrefixLargeFuncOn[T any](rt *Runtime, k int, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	n, err := rt.dualOrder("PrefixLargeFunc")
	if err != nil {
		return nil, Stats{}, err
	}
	return prefix.DPrefixLarge(n, k, in, mono(identity, combine), inclusive)
}

// PrefixSegmentedOn computes the inclusive segmented prefix; see
// PrefixSegmented.
func PrefixSegmentedOn[T any](rt *Runtime, values []T, heads []bool, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	n, err := rt.dualOrder("PrefixSegmented")
	if err != nil {
		return nil, Stats{}, err
	}
	return prefix.DPrefixSegmented(n, values, heads, mono(identity, combine))
}

// SortOn sorts 2^(2n-1) ordered keys on rt's network with Algorithm 3.
func SortOn[K cmp.Ordered](rt *Runtime, keys []K, ord Order) ([]K, Stats, error) {
	r, err := rt.recursive("Sort")
	if err != nil {
		return nil, Stats{}, err
	}
	return sortnet.DSortOn(r, keys, func(a, b K) bool { return a < b }, ord, nil)
}

// SortFuncOn sorts arbitrary records under a user comparison.
func SortFuncOn[K any](rt *Runtime, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	r, err := rt.recursive("SortFunc")
	if err != nil {
		return nil, Stats{}, err
	}
	return sortnet.DSortOn(r, keys, less, ord, nil)
}

// SortLargeOn sorts k·2^(2n-1) keys, k per node.
func SortLargeOn[K cmp.Ordered](rt *Runtime, k int, keys []K, ord Order) ([]K, Stats, error) {
	n, err := rt.dualOrder("SortLarge")
	if err != nil {
		return nil, Stats{}, err
	}
	return sortnet.DSortLarge(n, k, keys, func(a, b K) bool { return a < b }, ord)
}

// SortLargeFuncOn is SortLargeOn with a user comparison.
func SortLargeFuncOn[K any](rt *Runtime, k int, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	n, err := rt.dualOrder("SortLargeFunc")
	if err != nil {
		return nil, Stats{}, err
	}
	return sortnet.DSortLarge(n, k, keys, less, ord)
}

// BroadcastOn delivers value from node root to every node in 2n steps.
func BroadcastOn[T any](rt *Runtime, root int, value T) ([]T, Stats, error) {
	return collective.BroadcastOn(rt.c, root, value)
}

// AllReduceOn combines all elements in order and delivers the total to
// every node, in 2n steps.
func AllReduceOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	return collective.AllReduceOn(rt.c, in, mono(identity, combine))
}

// AllReduceSumOn is AllReduceOn specialised to addition.
func AllReduceSumOn[T monoid.Number](rt *Runtime, in []T) ([]T, Stats, error) {
	return collective.AllReduceOn(rt.c, in, monoid.Sum[T]())
}

// GatherOn collects every element to root in element order.
func GatherOn[T any](rt *Runtime, root int, in []T) ([]T, Stats, error) {
	n, err := rt.dualOrder("Gather")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.Gather(n, root, in)
}

// ScatterOn distributes in (element order) from root.
func ScatterOn[T any](rt *Runtime, root int, in []T) ([]T, Stats, error) {
	n, err := rt.dualOrder("Scatter")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.Scatter(n, root, in)
}

// AllGatherOn delivers the whole element sequence to every node.
func AllGatherOn[T any](rt *Runtime, in []T) ([][]T, Stats, error) {
	n, err := rt.dualOrder("AllGather")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.AllGather(n, in)
}

// AllToAllOn performs the total exchange: out[j][i] = in[i][j].
func AllToAllOn[T any](rt *Runtime, in [][]T) ([][]T, Stats, error) {
	n, err := rt.dualOrder("AllToAll")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.AllToAll(n, in)
}

// AllToAllVOn is the variable-size total exchange.
func AllToAllVOn[T any](rt *Runtime, in [][][]T) ([][][]T, Stats, error) {
	n, err := rt.dualOrder("AllToAllV")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.AllToAllV(n, in)
}

// ReduceScatterOn combines element-wise contributions and leaves each node
// its own combined entry.
func ReduceScatterOn[T any](rt *Runtime, in [][]T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	n, err := rt.dualOrder("ReduceScatter")
	if err != nil {
		return nil, Stats{}, err
	}
	return collective.ReduceScatter(n, in, mono(identity, combine))
}

// PermuteOn routes values[i] to slot dests[i].
func PermuteOn[T any](rt *Runtime, dests []int, values []T) ([]T, Stats, error) {
	n, err := rt.dualOrder("Permute")
	if err != nil {
		return nil, Stats{}, err
	}
	return sortnet.Permute(n, dests, values)
}

// SampleSortOn sorts k·2^(2n-1) keys by parallel sample sort.
func SampleSortOn[K cmp.Ordered](rt *Runtime, k int, keys []K) ([]K, Stats, error) {
	n, err := rt.dualOrder("SampleSort")
	if err != nil {
		return nil, Stats{}, err
	}
	return samplesort.Sort(n, k, keys, func(a, b K) bool { return a < b })
}

// SampleSortFuncOn is SampleSortOn with a user comparison.
func SampleSortFuncOn[K any](rt *Runtime, k int, keys []K, less func(a, b K) bool) ([]K, Stats, error) {
	n, err := rt.dualOrder("SampleSortFunc")
	if err != nil {
		return nil, Stats{}, err
	}
	return samplesort.Sort(n, k, keys, less)
}

// NTTOn computes the 2^(2n-1)-point number-theoretic transform of coeffs,
// or its inverse.
func NTTOn(rt *Runtime, coeffs []uint64, invert bool) ([]uint64, Stats, error) {
	n, err := rt.dualOrder("NTT")
	if err != nil {
		return nil, Stats{}, err
	}
	return ntt.Transform(n, coeffs, invert)
}

// PolyMulModOn multiplies two polynomials with coefficients mod 998244353.
func PolyMulModOn(rt *Runtime, a, b []uint64) ([]uint64, Stats, error) {
	n, err := rt.dualOrder("PolyMulMod")
	if err != nil {
		return nil, Stats{}, err
	}
	return ntt.PolyMul(n, a, b)
}
