package dualcube

import (
	"cmp"

	"dualcube/internal/collective"
	"dualcube/internal/dcomm"
	"dualcube/internal/embedding"
	"dualcube/internal/monoid"
	"dualcube/internal/ntt"
	"dualcube/internal/prefix"
	"dualcube/internal/samplesort"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// Runtime is a reusable execution handle for one D_n. It binds the
// process-wide cached topology (one immutable *DualCube per order, shared by
// every caller) and fronts the simulator's engine recycling pool, so a warm
// Runtime executes operations with zero topology or engine construction:
// the first run of an operation at a given element type builds its engine
// and compiles its cluster-technique schedule; every later run checks both
// out of their caches.
//
// A Runtime is safe for concurrent use: the topology and the compiled
// schedules are immutable, and checked-out engines are exclusive to one run
// (the pool hands each engine to at most one caller at a time), so
// concurrent operations on the same Runtime never share mutable state.
//
// Because Go does not allow type parameters on methods, the generic
// operations are free functions taking the Runtime first — PrefixOn(rt, in),
// SortOn(rt, keys, ord), and so on. The package-level one-shot functions
// (Prefix, Sort, ...) are thin wrappers over a package-default Runtime per
// order, so both styles share the same caches.
type Runtime struct {
	d *topology.DualCube
}

// NewRuntime returns the execution handle for D_n (1 <= n <= 14). The
// handle is cheap — it wraps the shared cached topology — so holding one
// per subsystem or creating them on the fly are equally fine; all handles
// of the same order share every cache.
func NewRuntime(n int) (*Runtime, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	return &Runtime{d: d}, nil
}

// defaultRuntimes backs the package-level one-shot functions: one Runtime
// per order, built eagerly beside the topology cache so one-shot calls pay
// no lookup synchronization.
var defaultRuntimes [topology.MaxDualCubeOrder + 1]Runtime

func init() {
	for n := 1; n <= topology.MaxDualCubeOrder; n++ {
		d, _ := topology.Shared(n)
		defaultRuntimes[n] = Runtime{d: d}
	}
}

// defaultRuntime resolves the package-default Runtime for order n.
func defaultRuntime(n int) (*Runtime, error) {
	if n < 1 || n > topology.MaxDualCubeOrder {
		// Delegate the error wording to the shared range check.
		if _, err := topology.Shared(n); err != nil {
			return nil, err
		}
	}
	return &defaultRuntimes[n], nil
}

// Order returns n, the number of links per node.
func (rt *Runtime) Order() int { return rt.d.Order() }

// Nodes returns the number of nodes, 2^(2n-1).
func (rt *Runtime) Nodes() int { return rt.d.Nodes() }

// Network returns the topology handle for structural queries.
func (rt *Runtime) Network() *Network { return &Network{d: rt.d} }

// Warm pre-compiles the cluster-technique schedules of every collective
// operation for this order. Engines are typed by element, so they warm on
// the first run of each (operation, element type) pair; Warm only removes
// the schedule-compilation cost from that first run. The returned error is
// nil for every operation in the Op enum; it exists so compilation failures
// surface to callers instead of panicking.
func (rt *Runtime) Warm() error {
	for op := dcomm.OpPrefix; op < dcomm.OpEnd; op++ {
		if _, err := dcomm.Compiled(rt.d, op); err != nil {
			return err
		}
	}
	return nil
}

// Barrier synchronizes all nodes of the Runtime's network; it completes
// only after every node has entered it (2n communication steps).
func (rt *Runtime) Barrier() (Stats, error) {
	return collective.Barrier(rt.d.Order())
}

// HamiltonianCycle returns a Hamiltonian cycle of the Runtime's network
// (n >= 2): a dilation-1 ring embedding over all 2^(2n-1) nodes.
func (rt *Runtime) HamiltonianCycle() ([]int, error) {
	return embedding.DualCubeHamiltonianCycle(rt.d.Order())
}

// PrefixOn computes all prefix sums of in on rt's network: out[i] =
// in[0]+...+in[i], Algorithm 2 of the paper in 2n communication steps.
func PrefixOn[T monoid.Number](rt *Runtime, in []T) ([]T, Stats, error) {
	return prefix.DPrefix(rt.d.Order(), in, monoid.Sum[T](), true, nil)
}

// PrefixFuncOn is PrefixOn under an arbitrary associative operation with
// identity; combine is applied strictly in element order. Set inclusive to
// false for the diminished prefix.
func PrefixFuncOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	return prefix.DPrefix(rt.d.Order(), in, mono(identity, combine), inclusive, nil)
}

// PrefixDegradedOn is PrefixOn on a network degraded by plan's permanent
// link faults; see PrefixDegraded.
func PrefixDegradedOn[T monoid.Number](rt *Runtime, in []T, plan *FaultPlan) ([]T, Stats, error) {
	return prefix.DPrefixDegraded(rt.d.Order(), in, monoid.Sum[T](), true, plan)
}

// PrefixDegradedFuncOn is PrefixDegradedOn for an arbitrary monoid.
func PrefixDegradedFuncOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T, inclusive bool, plan *FaultPlan) ([]T, Stats, error) {
	return prefix.DPrefixDegraded(rt.d.Order(), in, mono(identity, combine), inclusive, plan)
}

// PrefixLargeOn computes prefix sums of an input with k elements per node.
func PrefixLargeOn[T monoid.Number](rt *Runtime, k int, in []T) ([]T, Stats, error) {
	return prefix.DPrefixLarge(rt.d.Order(), k, in, monoid.Sum[T](), true)
}

// PrefixLargeFuncOn is PrefixLargeOn for an arbitrary monoid.
func PrefixLargeFuncOn[T any](rt *Runtime, k int, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	return prefix.DPrefixLarge(rt.d.Order(), k, in, mono(identity, combine), inclusive)
}

// PrefixSegmentedOn computes the inclusive segmented prefix; see
// PrefixSegmented.
func PrefixSegmentedOn[T any](rt *Runtime, values []T, heads []bool, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	return prefix.DPrefixSegmented(rt.d.Order(), values, heads, mono(identity, combine))
}

// SortOn sorts 2^(2n-1) ordered keys on rt's network with Algorithm 3.
func SortOn[K cmp.Ordered](rt *Runtime, keys []K, ord Order) ([]K, Stats, error) {
	return sortnet.DSort(rt.d.Order(), keys, func(a, b K) bool { return a < b }, ord, nil)
}

// SortFuncOn sorts arbitrary records under a user comparison.
func SortFuncOn[K any](rt *Runtime, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	return sortnet.DSort(rt.d.Order(), keys, less, ord, nil)
}

// SortLargeOn sorts k·2^(2n-1) keys, k per node.
func SortLargeOn[K cmp.Ordered](rt *Runtime, k int, keys []K, ord Order) ([]K, Stats, error) {
	return sortnet.DSortLarge(rt.d.Order(), k, keys, func(a, b K) bool { return a < b }, ord)
}

// SortLargeFuncOn is SortLargeOn with a user comparison.
func SortLargeFuncOn[K any](rt *Runtime, k int, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	return sortnet.DSortLarge(rt.d.Order(), k, keys, less, ord)
}

// BroadcastOn delivers value from node root to every node in 2n steps.
func BroadcastOn[T any](rt *Runtime, root int, value T) ([]T, Stats, error) {
	return collective.Broadcast(rt.d.Order(), root, value)
}

// AllReduceOn combines all elements in order and delivers the total to
// every node, in 2n steps.
func AllReduceOn[T any](rt *Runtime, in []T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	return collective.AllReduce(rt.d.Order(), in, mono(identity, combine))
}

// AllReduceSumOn is AllReduceOn specialised to addition.
func AllReduceSumOn[T monoid.Number](rt *Runtime, in []T) ([]T, Stats, error) {
	return collective.AllReduce(rt.d.Order(), in, monoid.Sum[T]())
}

// GatherOn collects every element to root in element order.
func GatherOn[T any](rt *Runtime, root int, in []T) ([]T, Stats, error) {
	return collective.Gather(rt.d.Order(), root, in)
}

// ScatterOn distributes in (element order) from root.
func ScatterOn[T any](rt *Runtime, root int, in []T) ([]T, Stats, error) {
	return collective.Scatter(rt.d.Order(), root, in)
}

// AllGatherOn delivers the whole element sequence to every node.
func AllGatherOn[T any](rt *Runtime, in []T) ([][]T, Stats, error) {
	return collective.AllGather(rt.d.Order(), in)
}

// AllToAllOn performs the total exchange: out[j][i] = in[i][j].
func AllToAllOn[T any](rt *Runtime, in [][]T) ([][]T, Stats, error) {
	return collective.AllToAll(rt.d.Order(), in)
}

// AllToAllVOn is the variable-size total exchange.
func AllToAllVOn[T any](rt *Runtime, in [][][]T) ([][][]T, Stats, error) {
	return collective.AllToAllV(rt.d.Order(), in)
}

// ReduceScatterOn combines element-wise contributions and leaves each node
// its own combined entry.
func ReduceScatterOn[T any](rt *Runtime, in [][]T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	return collective.ReduceScatter(rt.d.Order(), in, mono(identity, combine))
}

// PermuteOn routes values[i] to slot dests[i].
func PermuteOn[T any](rt *Runtime, dests []int, values []T) ([]T, Stats, error) {
	return sortnet.Permute(rt.d.Order(), dests, values)
}

// SampleSortOn sorts k·2^(2n-1) keys by parallel sample sort.
func SampleSortOn[K cmp.Ordered](rt *Runtime, k int, keys []K) ([]K, Stats, error) {
	return samplesort.Sort(rt.d.Order(), k, keys, func(a, b K) bool { return a < b })
}

// SampleSortFuncOn is SampleSortOn with a user comparison.
func SampleSortFuncOn[K any](rt *Runtime, k int, keys []K, less func(a, b K) bool) ([]K, Stats, error) {
	return samplesort.Sort(rt.d.Order(), k, keys, less)
}

// NTTOn computes the 2^(2n-1)-point number-theoretic transform of coeffs,
// or its inverse.
func NTTOn(rt *Runtime, coeffs []uint64, invert bool) ([]uint64, Stats, error) {
	return ntt.Transform(rt.d.Order(), coeffs, invert)
}

// PolyMulModOn multiplies two polynomials with coefficients mod 998244353.
func PolyMulModOn(rt *Runtime, a, b []uint64) ([]uint64, Stats, error) {
	return ntt.PolyMul(rt.d.Order(), a, b)
}
