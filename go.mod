module dualcube

go 1.22
