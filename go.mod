module dualcube

go 1.23
