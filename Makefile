# Convenience targets for the dual-cube reproduction.

GO ?= go

.PHONY: all build vet test test-short race bench bench-json experiments figures fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/dcvet ./...
	$(GO) run ./cmd/dcvet -escgate
	gofmt -l .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./internal/machine ./internal/collective ./internal/prefix ./internal/serve

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark sweep plus the E23 serving load sweep: one
# JSON line per point (grid: name, order, ns/op, allocs/op, bytes/op, cycles;
# E23: op, order, clients, max batch, rps, p50/p99, mean batch).
bench-json:
	$(GO) run ./cmd/dcbench -json > BENCH_8.json
	$(GO) run ./cmd/dcserve -load -op prefix -n 5 -clients 64 -dur 1s -sweep 1,8,32 -json >> BENCH_8.json

# Regenerate every experiment table (the content of EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/dcbench

# Reproduce the paper's figures as text.
figures:
	$(GO) run ./cmd/dcinfo -fig 2
	$(GO) run ./cmd/dprefix
	$(GO) run ./cmd/dsort

# Short fuzzing bursts over the two fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzDPrefixD3 -fuzztime=30s ./internal/prefix
	$(GO) test -fuzz=FuzzDSortD3 -fuzztime=30s ./internal/sortnet

clean:
	$(GO) clean ./...
