package dualcube

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// differentialWorkloads is every algorithm family exercised by the
// scheduler equivalence test: prefix, sorting, and all collectives, each
// returning its outputs and the run statistics for a given machine order.
var differentialWorkloads = []struct {
	name string
	run  func(n int) (any, Stats, error)
}{
	{"Prefix", func(n int) (any, Stats, error) {
		out, st, err := Prefix(n, diffInput(n))
		return out, st, err
	}},
	{"PrefixDiminished", func(n int) (any, Stats, error) {
		out, st, err := PrefixFunc(n, diffInput(n), func() int { return 0 }, func(a, b int) int { return a + b }, false)
		return out, st, err
	}},
	{"PrefixSegmented", func(n int) (any, Stats, error) {
		in := diffInput(n)
		heads := make([]bool, len(in))
		for i := range heads {
			heads[i] = i%5 == 0
		}
		out, st, err := PrefixSegmented(n, in, heads, func() int { return 0 }, func(a, b int) int { return a + b })
		return out, st, err
	}},
	{"Sort", func(n int) (any, Stats, error) {
		out, st, err := Sort(n, diffInput(n), Ascending)
		return out, st, err
	}},
	{"SortDescending", func(n int) (any, Stats, error) {
		out, st, err := Sort(n, diffInput(n), Descending)
		return out, st, err
	}},
	{"Broadcast", func(n int) (any, Stats, error) {
		out, st, err := Broadcast(n, 3, 42)
		return out, st, err
	}},
	{"AllReduce", func(n int) (any, Stats, error) {
		out, st, err := AllReduceSum(n, diffInput(n))
		return out, st, err
	}},
	{"Gather", func(n int) (any, Stats, error) {
		out, st, err := Gather(n, 1, diffInput(n))
		return out, st, err
	}},
	{"Scatter", func(n int) (any, Stats, error) {
		out, st, err := Scatter(n, 1, diffInput(n))
		return out, st, err
	}},
	{"AllGather", func(n int) (any, Stats, error) {
		out, st, err := AllGather(n, diffInput(n))
		return out, st, err
	}},
	{"AllToAll", func(n int) (any, Stats, error) {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = i*N + j
			}
		}
		out, st, err := AllToAll(n, in)
		return out, st, err
	}},
	{"AllToAllV", func(n int) (any, Stats, error) {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n)))
		in := make([][][]int, N)
		for i := range in {
			in[i] = make([][]int, N)
			for j := range in[i] {
				in[i][j] = make([]int, rng.Intn(3))
				for k := range in[i][j] {
					in[i][j][k] = i*1000 + j*10 + k
				}
			}
		}
		out, st, err := AllToAllV(n, in)
		return out, st, err
	}},
	{"ReduceScatter", func(n int) (any, Stats, error) {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = (i + 1) * (j + 1)
			}
		}
		out, st, err := ReduceScatter(n, in, func() int { return 0 }, func(a, b int) int { return a + b })
		return out, st, err
	}},
	{"Permute", func(n int) (any, Stats, error) {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n)))
		out, st, err := Permute(n, rng.Perm(N), diffInput(n))
		return out, st, err
	}},
}

// topologyWorkloads are the operations implemented generically over
// topology.Comm — the subset of differentialWorkloads that accepts an
// explicit Runtime, so the differential harness can aim it at any family.
var topologyWorkloads = []struct {
	name string
	run  func(rt *Runtime) (any, Stats, error)
}{
	{"Prefix", func(rt *Runtime) (any, Stats, error) {
		out, st, err := PrefixOn(rt, diffInput(rt.Order()))
		return out, st, err
	}},
	{"PrefixDiminished", func(rt *Runtime) (any, Stats, error) {
		out, st, err := PrefixFuncOn(rt, diffInput(rt.Order()), func() int { return 0 }, func(a, b int) int { return a + b }, false)
		return out, st, err
	}},
	{"Sort", func(rt *Runtime) (any, Stats, error) {
		out, st, err := SortOn(rt, diffInput(rt.Order()), Ascending)
		return out, st, err
	}},
	{"SortDescending", func(rt *Runtime) (any, Stats, error) {
		out, st, err := SortOn(rt, diffInput(rt.Order()), Descending)
		return out, st, err
	}},
	{"Broadcast", func(rt *Runtime) (any, Stats, error) {
		out, st, err := BroadcastOn(rt, 3, 42)
		return out, st, err
	}},
	{"AllReduce", func(rt *Runtime) (any, Stats, error) {
		out, st, err := AllReduceSumOn(rt, diffInput(rt.Order()))
		return out, st, err
	}},
}

func diffInput(n int) []int {
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(int64(n) * 7))
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Intn(1 << 16)
	}
	return in
}

// TestSchedulerDifferential runs every workload under all three execution
// backends — the worker-pool engine, the goroutine-per-node engine, and the
// direct kernel executor — and requires bit-identical outputs and identical
// cost statistics (Cycles, CommCycles, Messages, MaxOps, TotalOps): the
// backends must be observationally equivalent, not merely all correct.
//
// The generic workloads then sweep every topology family. Per family the
// same three-backend equivalence must hold, and every family must reproduce
// the dual-cube run bit-for-bit — outputs AND Stats — because hypercube and
// Z-cube schedules execute over the embedded D_n skeleton, so the dual-cube
// is their oracle.
func TestSchedulerDifferential(t *testing.T) {
	defer SetSimScheduler(SchedulerDefault)
	for _, w := range differentialWorkloads {
		for n := 2; n <= 4; n++ {
			t.Run(fmt.Sprintf("%s/D_%d", w.name, n), func(t *testing.T) {
				SetSimScheduler(SchedulerWorkerPool)
				poolOut, poolStats, poolErr := w.run(n)
				if poolErr != nil {
					t.Fatalf("pool err = %v", poolErr)
				}
				for _, alt := range []struct {
					name  string
					sched Scheduler
				}{
					{"goroutine-per-node", SchedulerGoroutinePerNode},
					{"direct", SchedulerDirect},
				} {
					SetSimScheduler(alt.sched)
					out, st, err := w.run(n)
					if err != nil {
						t.Fatalf("%s err = %v", alt.name, err)
					}
					if st != poolStats {
						t.Errorf("stats diverge:\n  worker-pool: %+v\n  %s: %+v", poolStats, alt.name, st)
					}
					if !reflect.DeepEqual(out, poolOut) {
						t.Errorf("outputs diverge between worker-pool and %s", alt.name)
					}
				}
			})
		}
	}

	for _, w := range topologyWorkloads {
		for n := 2; n <= 4; n++ {
			// The dualcube family runs first (Families() order) and becomes
			// the oracle the other families are pinned against.
			var oracleOut any
			var oracleStats Stats
			for _, fam := range Families() {
				t.Run(fmt.Sprintf("%s/%s/D_%d", w.name, fam, n), func(t *testing.T) {
					rt, err := NewRuntimeOn(fam, n)
					if err != nil {
						t.Fatal(err)
					}
					SetSimScheduler(SchedulerWorkerPool)
					poolOut, poolStats, poolErr := w.run(rt)
					if poolErr != nil {
						t.Fatalf("pool err = %v", poolErr)
					}
					for _, alt := range []struct {
						name  string
						sched Scheduler
					}{
						{"goroutine-per-node", SchedulerGoroutinePerNode},
						{"direct", SchedulerDirect},
					} {
						SetSimScheduler(alt.sched)
						out, st, err := w.run(rt)
						if err != nil {
							t.Fatalf("%s err = %v", alt.name, err)
						}
						if st != poolStats {
							t.Errorf("stats diverge:\n  worker-pool: %+v\n  %s: %+v", poolStats, alt.name, st)
						}
						if !reflect.DeepEqual(out, poolOut) {
							t.Errorf("outputs diverge between worker-pool and %s", alt.name)
						}
					}
					if fam == "dualcube" {
						oracleOut, oracleStats = poolOut, poolStats
						return
					}
					if oracleOut == nil {
						t.Fatal("dualcube oracle run missing")
					}
					if poolStats != oracleStats {
						t.Errorf("stats diverge from the dual-cube oracle:\n  dualcube: %+v\n  %s: %+v", oracleStats, fam, poolStats)
					}
					if !reflect.DeepEqual(poolOut, oracleOut) {
						t.Errorf("outputs diverge between dualcube and %s", fam)
					}
				})
			}
		}
	}
}

// TestSchedulerDifferentialWorkerCounts pins the worker count to several
// values and requires the same equivalence — shard boundaries must not be
// observable.
func TestSchedulerDifferentialWorkerCounts(t *testing.T) {
	defer SetSimWorkers(0)
	const n = 3
	ref, refStats, err := Prefix(n, diffInput(n))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7, 64} {
		SetSimWorkers(k)
		out, st, err := Prefix(n, diffInput(n))
		if err != nil {
			t.Fatalf("workers=%d: %v", k, err)
		}
		if st != refStats {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", k, st, refStats)
		}
		if !reflect.DeepEqual(out, ref) {
			t.Errorf("workers=%d: outputs diverge", k)
		}
	}
}
