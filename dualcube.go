// Package dualcube is a library of parallel algorithms on the dual-cube
// interconnection network, reproducing "Prefix Computation and Sorting in
// Dual-Cube" (Yamin Li, Shietung Peng, Wanming Chu; ICPP 2008).
//
// The dual-cube D_n is a bounded-degree hypercube derivative: 2^(2n-1)
// nodes of degree n (the equal-sized hypercube needs 2n-1 links per node),
// diameter 2n. This package provides:
//
//   - the topology itself (addressing, clusters, cross-edges, distance,
//     routing, and the recursive presentation) via New;
//   - a shared Runtime layer (NewRuntime) binding the cached topology,
//     the compiled cluster-technique schedules, and the engine recycling
//     pool, so repeated operations run with zero per-call construction;
//   - parallel prefix computation (Algorithm 2 of the paper): 2n
//     communication steps on a simulated synchronous multicomputer —
//     Prefix, PrefixFunc, PrefixLarge;
//   - bitonic sorting (Algorithm 3): 6n²-7n+2 communication steps —
//     Sort, SortFunc, SortLarge;
//   - collective operations built with the same cluster technique, each
//     taking 2n rounds (the diameter): Broadcast, AllReduce, Gather,
//     Scatter, AllGather, AllToAll(V), ReduceScatter;
//   - applications of the two techniques: segmented scans, oblivious
//     permutation routing (Permute), parallel sample sort, a distributed
//     number-theoretic transform with exact polynomial multiplication, and
//     a verified Hamiltonian-cycle (ring) embedding.
//
// Every operation executes on the message-passing simulator and returns a
// Stats value with the communication and computation costs in the paper's
// measures, so the theorems can be checked empirically (see EXPERIMENTS.md).
//
// The package-level functions are one-shot conveniences: each resolves the
// package-default Runtime for its order and delegates to the corresponding
// ...On function. Long-running callers can hold their own Runtime (see
// NewRuntime), though both styles share the same process-wide caches.
package dualcube

import (
	"cmp"

	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// Stats reports the cost of one simulated run: clock cycles (communication
// time), cycles that carried traffic, total messages (= link hops), and
// per-node computation rounds (MaxOps is the parallel computation time).
type Stats = machine.Stats

// Order selects a sort direction (the paper's tag).
type Order = sortnet.Order

// Sort directions.
const (
	Ascending  = sortnet.Ascending
	Descending = sortnet.Descending
)

// Network is a dual-cube D_n: the topology handle used for structural
// queries. All algorithm entry points take the order n directly, so a
// Network is only needed for inspecting the graph itself.
type Network struct {
	d *topology.DualCube
}

// New returns the dual-cube D_n (1 <= n <= 14). D_n has 2^(2n-1) nodes,
// each with n-1 intra-cluster links and one cross-edge. The underlying
// topology value is the process-wide cached instance.
func New(n int) (*Network, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	return &Network{d: d}, nil
}

// Order returns n, the number of links per node.
func (nw *Network) Order() int { return nw.d.Order() }

// Nodes returns the number of nodes, 2^(2n-1).
func (nw *Network) Nodes() int { return nw.d.Nodes() }

// Degree returns the degree n of every node.
func (nw *Network) Degree() int { return nw.d.Order() }

// Diameter returns the network diameter, 2n (1 for D_1).
func (nw *Network) Diameter() int { return nw.d.Diameter() }

// ClusterSize returns the number of nodes per cluster, 2^(n-1).
func (nw *Network) ClusterSize() int { return nw.d.ClusterSize() }

// Class returns the class indicator (0 or 1) of node u.
func (nw *Network) Class(u int) int { return nw.d.Class(u) }

// ClusterID returns node u's cluster within its class.
func (nw *Network) ClusterID(u int) int { return nw.d.ClusterID(u) }

// LocalID returns node u's index within its cluster.
func (nw *Network) LocalID(u int) int { return nw.d.LocalID(u) }

// CrossNeighbor returns the endpoint of node u's cross-edge.
func (nw *Network) CrossNeighbor(u int) int { return nw.d.CrossNeighbor(u) }

// Neighbors returns node u's n neighbors in ascending order.
func (nw *Network) Neighbors(u int) []int { return nw.d.Neighbors(u) }

// HasEdge reports whether {u, v} is a link.
func (nw *Network) HasEdge(u, v int) bool { return nw.d.HasEdge(u, v) }

// Distance returns the shortest-path length between u and v using the
// paper's closed form (Hamming distance, +2 when u and v lie in distinct
// clusters of the same class).
func (nw *Network) Distance(u, v int) int { return nw.d.Distance(u, v) }

// Route returns a shortest path from u to v, inclusive of both endpoints.
func (nw *Network) Route(u, v int) []int { return nw.d.Route(u, v) }

// ToRecursive converts a node address to the recursive (bit-interleaved)
// presentation of the paper's Section 4; FromRecursive inverts it.
func (nw *Network) ToRecursive(u int) int { return nw.d.ToRecursive(u) }

// FromRecursive converts a recursive ID back to a node address.
func (nw *Network) FromRecursive(r int) int { return nw.d.FromRecursive(r) }

// mono assembles an internal monoid from the facade's function pair.
func mono[T any](identity func() T, combine func(a, b T) T) monoid.Monoid[T] {
	return monoid.Monoid[T]{Name: "user", Identity: identity, Combine: combine}
}

// Prefix computes all prefix sums of in on D_n: out[i] = in[0]+...+in[i].
// in must have length 2^(2n-1) (one element per node; see PrefixLarge for
// longer inputs). It runs Algorithm 2 of the paper in 2n communication
// steps.
func Prefix[T monoid.Number](n int, in []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixOn(rt, in)
}

// PrefixFunc computes all prefixes of in under an arbitrary associative
// operation with identity; combine is applied strictly in element order, so
// non-commutative operations are supported. Set inclusive to false for the
// diminished prefix (out[i] excludes in[i]).
func PrefixFunc[T any](n int, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixFuncOn(rt, in, identity, combine, inclusive)
}

// PrefixDegraded computes all prefix sums of in on a D_n degraded by plan's
// permanent link faults: the schedule reroutes every severed exchange over
// alive detour paths, correct for any f <= n-1 link faults (the link
// connectivity of D_n). A nil plan is byte-identical to Prefix; each broken
// pair stretches the 2n-step schedule by its repair relay cycles, reported in
// Stats (see EXPERIMENTS.md for the measured sweep against Theorem 1's 2n+1
// bound). Plans with node faults or transient noise are rejected.
func PrefixDegraded[T monoid.Number](n int, in []T, plan *FaultPlan) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixDegradedOn(rt, in, plan)
}

// PrefixDegradedFunc is PrefixDegraded for an arbitrary monoid, with the
// inclusive/diminished choice of PrefixFunc.
func PrefixDegradedFunc[T any](n int, in []T, identity func() T, combine func(a, b T) T, inclusive bool, plan *FaultPlan) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixDegradedFuncOn(rt, in, identity, combine, inclusive, plan)
}

// PrefixLarge computes prefix sums of an input with k = len(in)/2^(2n-1)
// elements per node (len(in) must be a multiple of the node count). The
// communication cost stays 2n steps regardless of k.
func PrefixLarge[T monoid.Number](n, k int, in []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixLargeOn(rt, k, in)
}

// PrefixLargeFunc is PrefixLarge for an arbitrary monoid.
func PrefixLargeFunc[T any](n, k int, in []T, identity func() T, combine func(a, b T) T, inclusive bool) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixLargeFuncOn(rt, k, in, identity, combine, inclusive)
}

// Sort sorts 2^(2n-1) ordered keys on D_n with Algorithm 3 (bitonic sort
// over the recursive presentation): 6n²-7n+2 communication steps and
// 2n²-n comparison rounds.
func Sort[K cmp.Ordered](n int, keys []K, ord Order) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SortOn(rt, keys, ord)
}

// SortFunc sorts arbitrary records under a user comparison.
func SortFunc[K any](n int, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SortFuncOn(rt, keys, less, ord)
}

// SortLarge sorts k·2^(2n-1) keys, k per node, by local sort plus
// merge-split compare-exchange. Communication steps are the same as Sort.
func SortLarge[K cmp.Ordered](n, k int, keys []K, ord Order) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SortLargeOn(rt, k, keys, ord)
}

// SortLargeFunc is SortLarge with a user comparison.
func SortLargeFunc[K any](n, k int, keys []K, less func(a, b K) bool, ord Order) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SortLargeFuncOn(rt, k, keys, less, ord)
}

// Broadcast delivers value from node root to every node in 2n steps (the
// network diameter). The result is indexed by node ID.
func Broadcast[T any](n int, root int, value T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return BroadcastOn(rt, root, value)
}

// AllReduce combines all elements in order and delivers the total to every
// node, in 2n steps.
func AllReduce[T any](n int, in []T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return AllReduceOn(rt, in, identity, combine)
}

// AllReduceSum is AllReduce specialised to addition.
func AllReduceSum[T monoid.Number](n int, in []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return AllReduceSumOn(rt, in)
}

// Gather collects every element to root in 2n steps and returns them in
// element order.
func Gather[T any](n int, root int, in []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return GatherOn(rt, root, in)
}

// PrefixSegmented computes the inclusive segmented prefix: heads[i] = true
// starts a new segment at element i, and out[i] combines the values from
// its segment's start through i. Same 2n-step cost as Prefix.
func PrefixSegmented[T any](n int, values []T, heads []bool, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PrefixSegmentedOn(rt, values, heads, identity, combine)
}

// Scatter distributes in (element order) from root so each node receives
// its own element, in 2n steps. The result is indexed by node ID.
func Scatter[T any](n int, root int, in []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return ScatterOn(rt, root, in)
}

// AllGather delivers the whole element sequence to every node in 2n steps;
// out[u] is node u's copy, in element order.
func AllGather[T any](n int, in []T) ([][]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return AllGatherOn(rt, in)
}

// Permute routes values[i] to slot dests[i] (dests must be a permutation
// of 0..2^(2n-1)-1) by sorting on the destinations — an oblivious,
// contention-free schedule for any permutation at the cost of one Sort.
func Permute[T any](n int, dests []int, values []T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PermuteOn(rt, dests, values)
}

// HamiltonianCycle returns a Hamiltonian cycle of D_n (n >= 2): a
// dilation-1 ring embedding over all 2^(2n-1) nodes, one of the hypercube
// properties the dual-cube retains.
func HamiltonianCycle(n int) ([]int, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, err
	}
	return rt.HamiltonianCycle()
}

// AllToAll performs the total (all-to-all personalized) exchange in 2n
// rounds: element i sends in[i][j] to element j, and out[j][i] = in[i][j]
// — a distributed matrix transpose.
func AllToAll[T any](n int, in [][]T) ([][]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return AllToAllOn(rt, in)
}

// NTT computes the 2^(2n-1)-point number-theoretic transform (the FFT over
// the prime field mod 998244353) of coeffs on D_n, or its inverse; a
// demonstration of running a "normal" hypercube butterfly algorithm through
// the recursive presentation at 6n-5 communication steps.
func NTT(n int, coeffs []uint64, invert bool) ([]uint64, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return NTTOn(rt, coeffs, invert)
}

// PolyMulMod multiplies two polynomials with coefficients mod 998244353
// using three distributed NTTs on D_n.
func PolyMulMod(n int, a, b []uint64) ([]uint64, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return PolyMulModOn(rt, a, b)
}

// AllToAllV is the variable-size total exchange: element i sends the
// (possibly empty) slice in[i][j] to element j, in 2n rounds;
// out[j][i] = in[i][j].
func AllToAllV[T any](n int, in [][][]T) ([][][]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return AllToAllVOn(rt, in)
}

// SampleSort sorts k·2^(2n-1) keys by parallel sample sort: local sorts,
// an all-gather of regular samples, and one variable-size total exchange —
// 4n communication rounds instead of bitonic sort's Θ(n²) steps, at the
// price of data-dependent load balance.
func SampleSort[K cmp.Ordered](n, k int, keys []K) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SampleSortOn(rt, k, keys)
}

// SampleSortFunc is SampleSort with a user comparison.
func SampleSortFunc[K any](n, k int, keys []K, less func(a, b K) bool) ([]K, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return SampleSortFuncOn(rt, k, keys, less)
}

// ReduceScatter combines the element-wise contributions of all elements
// (out[j] = in[0][j] ⊕ ... ⊕ in[N-1][j], in source order) and leaves each
// element with its own combined entry, in 2n rounds.
func ReduceScatter[T any](n int, in [][]T, identity func() T, combine func(a, b T) T) ([]T, Stats, error) {
	rt, err := defaultRuntime(n)
	if err != nil {
		return nil, Stats{}, err
	}
	return ReduceScatterOn(rt, in, identity, combine)
}
