// Command dprefix runs the paper's Algorithm 2 (parallel prefix on the
// dual-cube) and prints the six-panel trace of Figure 3.
//
// Usage:
//
//	dprefix                  # Figure 3: prefix sums of 32 ones on D_3
//	dprefix -n 2 -input ramp # prefix sums of 1..8 on D_2
//	dprefix -input random -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/topology"
	"dualcube/internal/trace"
)

func main() {
	n := flag.Int("n", 3, "dual-cube order (Figure 3 uses D_3)")
	input := flag.String("input", "ones", "input data: ones | ramp | random")
	seed := flag.Int64("seed", 1, "seed for -input random")
	diminished := flag.Bool("diminished", false, "compute the diminished (exclusive) prefix")
	spacetime := flag.Bool("spacetime", false, "also print the message space-time diagram (n <= 3)")
	flag.Parse()

	d, err := topology.NewDualCube(*n)
	if err != nil {
		fatal(err)
	}
	in := make([]int, d.Nodes())
	switch *input {
	case "ones":
		for i := range in {
			in[i] = 1
		}
	case "ramp":
		for i := range in {
			in[i] = i + 1
		}
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		for i := range in {
			in[i] = rng.Intn(10)
		}
	default:
		fatal(fmt.Errorf("unknown -input %q", *input))
	}

	fmt.Printf("parallel prefix (sum) on %s: %d nodes, input %s\n\n", d.Name(), d.Nodes(), *input)
	var tr prefix.Trace[int]
	out, st, err := prefix.DPrefix(*n, in, monoid.Sum[int](), !*diminished, &tr)
	if err != nil {
		fatal(err)
	}
	if err := trace.RenderPrefixTrace(os.Stdout, d, &tr); err != nil {
		fatal(err)
	}
	fmt.Printf("\nresult: %v\n", out)
	fmt.Printf("\ncommunication steps: %d (Theorem 1 bound %d)\n", st.Cycles, prefix.PaperCommBound(*n))
	fmt.Printf("computation rounds:  %d (Theorem 1 bound %d)\n", st.MaxOps, prefix.PaperCompBound(*n))
	fmt.Printf("messages: %d\n", st.Messages)

	if *spacetime {
		_, _, rec, err := prefix.DPrefixRecorded(*n, in, monoid.Sum[int](), !*diminished)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nspace-time diagram (S send, R receive, B both):\n")
		if err := rec.RenderSpaceTime(os.Stdout, d.Nodes()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprefix:", err)
	os.Exit(1)
}
