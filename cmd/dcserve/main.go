// Command dcserve is the batched serving daemon over the dual-cube
// runtime: it owns a pool of warmed shards per order, coalesces compatible
// concurrent requests into lane-batched kernel passes, and serves
// HTTP+JSON with admission control and Prometheus-style metrics.
//
// Usage:
//
//	dcserve                          # serve D_4..D_6 on :8437
//	dcserve -addr :9000 -orders 5,6 -shards 2 -maxbatch 32 -window 200us -queue 256
//
//	dcserve -load                    # E23 load generator: batch-width sweep
//	dcserve -load -op prefix -n 5 -clients 64 -dur 2s -sweep 1,8,32 -json
//
// Serving endpoints:
//
//	POST /v1/prefix     {"n":5,"data":[...]}           → {"data":[...],"batch":k,...}
//	POST /v1/allreduce  {"n":5,"data":[...]}           → {"data":[total],...}
//	POST /v1/sort       {"n":5,"data":[...],"desc":t}  → {"data":[sorted],...}
//	POST /v1/broadcast  {"n":5,"root":0,"value":v}     → {"data":[v],...}
//	GET  /metrics                                      Prometheus text format
//	GET  /healthz                                      200 while serving
//	POST /admin/shard?n=5&shard=0&action=degrade&faults=2&seed=1
//
// Saturated queues answer 429 with Retry-After; an order with no shard able
// to run the op answers 503.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dualcube/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	orders := flag.String("orders", "4,5,6", "comma-separated dual-cube orders to serve")
	shards := flag.Int("shards", 1, "runtime shards per order")
	maxBatch := flag.Int("maxbatch", 32, "max requests coalesced into one kernel pass")
	window := flag.Duration("window", 200*time.Microsecond, "batch collection window")
	queue := flag.Int("queue", 256, "pending-queue capacity per (op, order) line")

	load := flag.Bool("load", false, "run the E23 load generator instead of serving")
	op := flag.String("op", "prefix", "with -load: operation to drive")
	n := flag.Int("n", 5, "with -load: dual-cube order")
	clients := flag.Int("clients", 64, "with -load: concurrent closed-loop clients")
	dur := flag.Duration("dur", 2*time.Second, "with -load: measurement window per point")
	sweep := flag.String("sweep", "1,8,32", "with -load: max-batch widths to sweep")
	jsonOut := flag.Bool("json", false, "with -load: emit points as JSON lines")
	verify := flag.Bool("verify", false, "with -load: verify every response (skews throughput)")
	seed := flag.Int64("seed", 2008, "with -load: payload seed")
	flag.Parse()

	if *load {
		if err := runLoad(*op, *n, *clients, *dur, *window, *sweep, *seed, *verify, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dcserve:", err)
			os.Exit(1)
		}
		return
	}

	ns, err := parseInts(*orders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcserve: bad -orders:", err)
		os.Exit(1)
	}
	s, err := serve.New(serve.Config{
		Orders:   ns,
		Shards:   *shards,
		MaxBatch: *maxBatch,
		Window:   *window,
		QueueCap: *queue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcserve:", err)
		os.Exit(1)
	}
	log.Printf("dcserve: serving orders %v (%d shard(s) each, max batch %d, window %v) on %s",
		ns, *shards, *maxBatch, *window, *addr)
	log.Fatal(http.ListenAndServe(*addr, serve.Handler(s)))
}

// runLoad is the E23 experiment body: sweep max-batch widths over one
// (op, order) line and report requests/sec with p50/p99 latency.
func runLoad(opName string, n, clients int, dur, window time.Duration, sweep string, seed int64, verify, jsonOut bool) error {
	op, err := serve.ParseOp(opName)
	if err != nil {
		return err
	}
	widths, err := parseInts(sweep)
	if err != nil {
		return fmt.Errorf("bad -sweep: %w", err)
	}
	points, err := serve.SweepBatch(serve.LoadConfig{
		Op:       op,
		N:        n,
		Clients:  clients,
		Duration: dur,
		Window:   window,
		Seed:     seed,
		Verify:   verify,
	}, widths)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, pt := range points {
			if err := enc.Encode(pt); err != nil {
				return err
			}
		}
		return nil
	}
	base := points[0].RPS
	fmt.Printf("E23: %s on D_%d, %d clients, %v per point\n", op, n, points[0].Clients, dur)
	fmt.Printf("%-9s %10s %9s %11s %11s %10s %8s\n",
		"maxbatch", "reqs", "rps", "p50(us)", "p99(us)", "meanbatch", "speedup")
	for _, pt := range points {
		fmt.Printf("%-9d %10d %9.0f %11.0f %11.0f %10.2f %7.2fx\n",
			pt.MaxBatch, pt.Requests, pt.RPS, pt.P50Micros, pt.P99Micros, pt.MeanBatch, pt.RPS/base)
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
