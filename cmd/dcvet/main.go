// Command dcvet is the repository's static checker: the repo-specific
// analyzers registered in internal/analysis (nodebody, statsadd, faultpure,
// abortpanic, kernelpure, laneparity) plus the schedule-IR verifier
// (internal/schedcheck), which proves every schedule dcomm.Compiled can
// produce for D_2..D_7 well-formed without running the simulator, and the
// compiler-diagnostics escape/BCE gate (internal/analysis/escgate).
//
// Three modes:
//
//	dcvet [flags] [packages]
//
// Standalone: loads the named packages (default ./...) of the enclosing
// module, runs every analyzer, then runs the schedule verifier. Exits 1 if
// any diagnostic is reported, 2 on operational failure.
//
//	dcvet -escgate [-json] [-update]
//
// Escape gate: rebuilds the module with -m and BCE diagnostics, attributes
// them to functions, and checks the checked-in budget
// (internal/analysis/escgate/testdata/escbudget.json). -json writes the
// machine-readable report to stdout; -update re-baselines the budgeted
// ceilings (never the zero list) to the measured actuals.
//
//	go vet -vettool=$(command -v dcvet) ./...
//
// Vet-tool: speaks the cmd/vet unitchecker protocol (-V=full version probe,
// then one invocation per package with a .cfg file describing sources and
// export data). Only the source analyzers run in this mode — the schedule
// verifier is whole-repository, not per-package — and findings exit 2, the
// convention go vet maps to "diagnostics reported".
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dualcube/internal/analysis"
	"dualcube/internal/analysis/driver"
	"dualcube/internal/analysis/escgate"
	"dualcube/internal/schedcheck"
)

func main() {
	args := os.Args[1:]
	// The go vet driver probes the tool with -V=full before anything else
	// and parses a buildID from the reply for its action cache; hashing our
	// own executable gives an ID that changes exactly when the tool does.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		id, err := selfHash()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("dcvet version devel buildID=%s\n", id)
		return
	}
	// The vet driver's second probe asks for the tool's flag definitions as
	// a JSON array; dcvet takes no per-analyzer flags in vet-tool mode.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// A single *.cfg positional argument is the unitchecker handshake.
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// selfHash returns the hex digest of the running executable.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// standalone runs dcvet over module packages plus the schedule verifier.
func standalone(args []string) int {
	fs := flag.NewFlagSet("dcvet", flag.ExitOnError)
	minOrder := fs.Int("minorder", 2, "smallest dual-cube order the schedule verifier covers")
	maxOrder := fs.Int("maxorder", 7, "largest dual-cube order the schedule verifier covers")
	noSched := fs.Bool("nosched", false, "skip the schedule-IR verifier")
	escGate := fs.Bool("escgate", false, "run the escape/BCE budget gate instead of the analyzers")
	jsonOut := fs.Bool("json", false, "with -escgate: write the machine-readable report to stdout")
	update := fs.Bool("update", false, "with -escgate: re-baseline budgeted ceilings to the measured actuals")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dcvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := driver.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *escGate {
		return runEscgate(root, *jsonOut, *update)
	}
	pkgs, err := driver.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := driver.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}

	failed := len(diags) > 0
	if !*noSched {
		if err := schedcheck.Verify(*minOrder, *maxOrder); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runEscgate executes the escape/BCE budget gate. Exit codes match the
// analyzer path: 0 clean, 1 budget failures, 2 operational failure.
func runEscgate(root string, jsonOut, update bool) int {
	modPath, err := modulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := escgate.Run(root, modPath, escgate.Options{Update: update})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if res.Updated {
		fmt.Fprintf(os.Stderr, "dcvet: escgate budget re-baselined in %s\n", escgate.BudgetPath(root))
	}
	for _, n := range res.Notices {
		fmt.Fprintf(os.Stderr, "dcvet: escgate note: %s\n", n)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "dcvet: escgate: %s\n", f)
	}
	if jsonOut {
		if err := res.Report.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		t := res.Report.Totals
		fmt.Fprintf(os.Stderr, "dcvet: escgate (go %s): %d escapes, %d bounds checks (%d in loops) module-wide; %d tracked functions, %d failure(s)\n",
			res.Report.GoVersion, t.Escapes, t.Bounds, t.LoopBounds, len(res.Report.Tracked), len(res.Failures))
	}
	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("dcvet: no module line in %s/go.mod", root)
}

// vetCfg is the configuration file the go vet driver hands a unitchecker
// tool: one package's sources plus everything needed to type-check them.
type vetCfg struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package under the go vet protocol. Returns the
// process exit code: 0 clean, 1 operational failure, 2 diagnostics found.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dcvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist even though these
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, and we have none
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkg, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := driver.RunPackage(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func parseFiles(fset *token.FileSet, cfg vetCfg) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// typecheck resolves imports through the cfg's ImportMap/PackageFile tables —
// the export data the go command already compiled for the build.
func typecheck(fset *token.FileSet, files []*ast.File, cfg vetCfg) (*driver.Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("dcvet: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("dcvet: type-checking %s: %w", cfg.ImportPath, err)
	}
	return &driver.Package{PkgPath: cfg.ImportPath, Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}
