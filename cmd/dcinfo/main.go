// Command dcinfo prints structural information about the dual-cube and the
// comparison networks: the Figure 1/2 cluster listings, the Section 2
// claims table (E2), the recursive-presentation summary (E6), and the
// network comparison of the paper's introduction (E11).
//
// Usage:
//
//	dcinfo -fig 2            # Figure-style cluster listing of D_2
//	dcinfo -claims           # E2 structural claims, n = 1..8
//	dcinfo -compare          # E11 comparison table
//	dcinfo -recursive -n 3   # recursive-presentation mapping of D_3
//	dcinfo -hamiltonian -n 3 # verified Hamiltonian cycle of D_3
//	dcinfo -faulttol         # E19 connectivity / fault-tolerance figures
package main

import (
	"flag"
	"fmt"
	"os"

	"dualcube/internal/embedding"
	"dualcube/internal/experiments"
	"dualcube/internal/topology"
	"dualcube/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "print the Figure 1/2-style cluster listing of D_n for the given n")
	claims := flag.Bool("claims", false, "print the E2 structural-claims table")
	compare := flag.Bool("compare", false, "print the E11 network-comparison table")
	recursive := flag.Bool("recursive", false, "print the recursive-presentation mapping (use with -n)")
	hamiltonian := flag.Bool("hamiltonian", false, "print a verified Hamiltonian cycle of D_n (use with -n)")
	faulttol := flag.Bool("faulttol", false, "print the E19 connectivity and fault-tolerance table")
	n := flag.Int("n", 3, "dual-cube order for -recursive / -hamiltonian")
	flag.Parse()

	ran := false
	if *fig > 0 {
		ran = true
		d, err := topology.NewDualCube(*fig)
		if err != nil {
			fatal(err)
		}
		if err := trace.RenderTopology(os.Stdout, d); err != nil {
			fatal(err)
		}
	}
	if *claims {
		ran = true
		printTable(experiments.E2Topology(8, 4))
	}
	if *compare {
		ran = true
		printTable(experiments.E11Compare())
	}
	if *faulttol {
		ran = true
		fmt.Print("Maximum tolerable link faults per topology, derived from each family's\ngeneralized connectivity figures (λ-1 faults provably leave the network\nconnected); the source of every bound is cited below its table.\n\n")
		printTable(experiments.E20TopologyFaultTolerance(6, 20, 2008))
		fmt.Println()
		printTable(experiments.E19FaultTolerance(6, 20, 2008))
	}
	if *recursive {
		ran = true
		if err := printRecursive(*n); err != nil {
			fatal(err)
		}
	}
	if *hamiltonian {
		ran = true
		if err := printHamiltonian(*n); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// printHamiltonian constructs, verifies and prints the dilation-1 ring
// embedding of D_n.
func printHamiltonian(n int) error {
	d, err := topology.NewDualCube(n)
	if err != nil {
		return err
	}
	cycle, err := embedding.DualCubeHamiltonianCycle(n)
	if err != nil {
		return err
	}
	if err := embedding.VerifyCycle(d, cycle); err != nil {
		return err
	}
	return trace.RenderHamiltonian(os.Stdout, d, cycle)
}

// printRecursive lists the original-to-recursive ID mapping of D_n and the
// parity rule of each dimension (E6).
func printRecursive(n int) error {
	d, err := topology.NewDualCube(n)
	if err != nil {
		return err
	}
	return trace.RenderRecursive(os.Stdout, d)
}

// printTable prints an experiment table, exiting on generation errors.
func printTable(s string, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Print(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcinfo:", err)
	os.Exit(1)
}
