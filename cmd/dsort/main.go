// Command dsort runs the paper's Algorithm 3 (bitonic sort on the
// dual-cube) and prints the step-by-step traces of Figures 5 and 6.
//
// Usage:
//
//	dsort                    # Figures 5/6: sort 8 keys on D_2
//	dsort -n 3 -seed 9       # sort 32 random keys on D_3
//	dsort -desc              # descending order (tag = 1)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
	"dualcube/internal/trace"
)

func main() {
	n := flag.Int("n", 2, "dual-cube order (Figures 5/6 use D_2)")
	seed := flag.Int64("seed", 42, "random permutation seed")
	desc := flag.Bool("desc", false, "sort descending (the paper's tag = 1)")
	spacetime := flag.Bool("spacetime", false, "also print the message space-time diagram (n <= 3)")
	flag.Parse()

	d, err := topology.NewDualCube(*n)
	if err != nil {
		fatal(err)
	}
	in := rand.New(rand.NewSource(*seed)).Perm(d.Nodes())
	ord := sortnet.Ascending
	if *desc {
		ord = sortnet.Descending
	}

	fmt.Printf("bitonic sort on %s (%d nodes, %s):\n\n", d.Name(), d.Nodes(), ord)
	var tr sortnet.Trace[int]
	out, st, err := sortnet.DSort(*n, in, func(a, b int) bool { return a < b }, ord, &tr)
	if err != nil {
		fatal(err)
	}
	if err := trace.RenderSortTrace(os.Stdout, *n, &tr); err != nil {
		fatal(err)
	}
	fmt.Printf("\nsorted: %v\n", out)
	fmt.Printf("\ncommunication steps: %d (formula %d, Theorem 2 bound %d)\n",
		st.Cycles, sortnet.DSortCommSteps(*n), sortnet.PaperSortCommBound(*n))
	fmt.Printf("comparison rounds:   %d (formula %d, Theorem 2 bound %d)\n",
		st.MaxOps, sortnet.DSortCompSteps(*n), sortnet.PaperSortCompBound(*n))
	fmt.Printf("messages: %d\n", st.Messages)

	if *spacetime {
		_, _, rec, err := sortnet.DSortRecorded(*n, in, func(a, b int) bool { return a < b }, ord)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nspace-time diagram (S send, R receive, B both):\n")
		if err := rec.RenderSpaceTime(os.Stdout, d.Nodes()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsort:", err)
	os.Exit(1)
}
