// Command dcbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: each table measures one claim of the paper (structure,
// Theorem 1, Theorem 2, baselines, overhead, extensions) on the simulated
// machine.
//
// Usage:
//
//	dcbench              # run every experiment
//	dcbench -exp E8      # one experiment: E2 E4 E5 E8 E9 E10 E11 E12 E13
package main

import (
	"flag"
	"fmt"
	"os"

	"dualcube/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E2, E4, E5, E8, E9, E10, E11, E12, E13, E14, E16, E17) or 'all'")
	flag.Parse()

	var out string
	var err error
	switch *exp {
	case "all":
		out, err = experiments.All()
	case "E2":
		out = experiments.E2Topology(8, 4)
	case "E4":
		out, err = experiments.E4Prefix(7)
	case "E5":
		out, err = experiments.E5CubePrefix(13)
	case "E8":
		out, err = experiments.E8Sort(6)
	case "E9", "E10":
		out, err = experiments.E9E10CubeSortAndOverhead(6)
	case "E11":
		out = experiments.E11Compare()
	case "E12":
		out, err = experiments.E12Large(3, []int{1, 4, 16, 64})
	case "E13":
		out, err = experiments.E13Collectives(7)
	case "E14":
		out, err = experiments.E14LinkLoads(5)
	case "E16":
		out, err = experiments.E16Emulation(5)
	case "E17":
		out, err = experiments.E17SampleSort(5, 16)
	default:
		fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}
