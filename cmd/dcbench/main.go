// Command dcbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: each table measures one claim of the paper (structure,
// Theorem 1, Theorem 2, baselines, overhead, extensions) on the simulated
// machine.
//
// Usage:
//
//	dcbench                  # run every experiment
//	dcbench -exp E8          # one experiment: E2 E4 E5 E8 E9 E10 E11 E12 E13 E14 E16 E17 E18 E19
//	dcbench -faults          # fault sweep: degraded D_prefix on D_4..D_6, f = 0..n-1
//	dcbench -faults -json    # same sweep as JSON lines (one point per line)
//	dcbench -faults -seed 7  # sweep under a different plan seed
package main

import (
	"flag"
	"fmt"
	"os"

	"dualcube/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E2, E4, E5, E8, E9, E10, E11, E12, E13, E14, E16, E17, E18, E19) or 'all'")
	faults := flag.Bool("faults", false, "run the seeded fault sweep (degraded D_prefix, f = 0..n-1 on D_4..D_6)")
	jsonOut := flag.Bool("json", false, "with -faults: emit JSON lines instead of the markdown table")
	seed := flag.Int64("seed", 2008, "base seed for the fault-sweep plans")
	flag.Parse()

	var out string
	var err error
	switch {
	case *faults:
		if *jsonOut {
			out, err = experiments.E18FaultSweepJSON(4, 6, *seed)
		} else {
			out, err = experiments.E18FaultSweep(4, 6, *seed)
		}
	default:
		switch *exp {
		case "all":
			out, err = experiments.All()
		case "E2":
			out, err = experiments.E2Topology(8, 4)
		case "E4":
			out, err = experiments.E4Prefix(7)
		case "E5":
			out, err = experiments.E5CubePrefix(13)
		case "E8":
			out, err = experiments.E8Sort(6)
		case "E9", "E10":
			out, err = experiments.E9E10CubeSortAndOverhead(6)
		case "E11":
			out, err = experiments.E11Compare()
		case "E12":
			out, err = experiments.E12Large(3, []int{1, 4, 16, 64})
		case "E13":
			out, err = experiments.E13Collectives(7)
		case "E14":
			out, err = experiments.E14LinkLoads(5)
		case "E16":
			out, err = experiments.E16Emulation(5)
		case "E17":
			out, err = experiments.E17SampleSort(5, 16)
		case "E18":
			out, err = experiments.E18FaultSweep(4, 6, *seed)
		case "E19":
			out, err = experiments.E19FaultTolerance(6, 20, *seed)
		default:
			fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}
