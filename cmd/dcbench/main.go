// Command dcbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: each table measures one claim of the paper (structure,
// Theorem 1, Theorem 2, baselines, overhead, extensions) on the simulated
// machine.
//
// Usage:
//
//	dcbench                  # run every experiment
//	dcbench -exp E8          # one experiment; the id list in -h comes from
//	                         # the registry (internal/experiments/registry.go)
//	dcbench -json            # benchmark sweep as JSON lines: one point per
//	                         # experiment (name, order, ns/op, allocs/op, cycles)
//	dcbench -json -sched worker-pool  # same sweep on an explicit backend
//	dcbench -faults          # fault sweep: degraded D_prefix on D_4..D_6, f = 0..n-1
//	dcbench -faults -json    # fault sweep as JSON lines (one point per line)
//	dcbench -faults -seed 7  # sweep under a different plan seed
//	dcbench -warm            # E20: cold-vs-warm per-call wall time of D_prefix
//	dcbench -warm -n 6 -runs 20  # same sweep, up to D_6, 20 calls per point
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"dualcube/internal/experiments"
)

func main() {
	// The experiment list comes from the registry so this help text cannot
	// rot as experiments are added.
	exp := flag.String("exp", "all", "experiment id ("+experiments.IDList()+") or 'all'")
	faults := flag.Bool("faults", false, "run the seeded fault sweep (degraded D_prefix, f = 0..n-1 on D_4..D_6)")
	jsonOut := flag.Bool("json", false, "emit JSON lines: alone, the benchmark sweep (one point per experiment); with -faults, the fault sweep")
	sched := flag.String("sched", "", "with -json: backend to benchmark (direct, worker-pool, goroutine-per-node; empty = package defaults)")
	seed := flag.Int64("seed", 2008, "base seed for the fault-sweep plans")
	warm := flag.Bool("warm", false, "run E20: cold-vs-warm per-call wall time of D_prefix (D_4..D_n)")
	maxN := flag.Int("n", 6, "with -warm: largest dual-cube order to sweep")
	runs := flag.Int("runs", 20, "with -warm: calls measured per configuration")
	coldprobe := flag.Int("coldprobe", 0, "internal: time one cold D_prefix call on D_n and print ns (used by -warm subprocesses)")
	warmprobe := flag.Int("warmprobe", 0, "internal: print the median warm D_prefix ns/call on D_n over -runs calls (used by -warm subprocesses)")
	flag.Parse()

	if *coldprobe > 0 {
		d, err := experiments.ColdCallOnce(*coldprobe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcbench:", err)
			os.Exit(1)
		}
		fmt.Println(d.Nanoseconds())
		return
	}
	if *warmprobe > 0 {
		d, err := experiments.WarmSteadyState(*warmprobe, *runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcbench:", err)
			os.Exit(1)
		}
		fmt.Println(d.Nanoseconds())
		return
	}

	var out string
	var err error
	switch {
	case *warm:
		out, err = experiments.E20ColdVsWarm(4, *maxN, *runs, freshProcessCold, freshProcessWarm)
	case *faults:
		if *jsonOut {
			out, err = experiments.E18FaultSweepJSON(4, 6, *seed)
		} else {
			out, err = experiments.E18FaultSweep(4, 6, *seed)
		}
	case *jsonOut:
		out, err = experiments.BenchJSON(*sched, 5)
	default:
		if *exp == "all" {
			out, err = experiments.All()
			break
		}
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q (known: %s)\n", *exp, experiments.IDList())
			os.Exit(2)
		}
		if e.Run == nil {
			// Benchmarks and the serving load generator live outside
			// dcbench; point at the reproduction command instead.
			out = fmt.Sprintf("%s — %s\nreproduce with: %s\n", e.ID, e.Title, e.HowTo)
			break
		}
		opts := experiments.DefaultOptions()
		opts.Seed = *seed
		opts.MaxN = *maxN
		opts.Runs = *runs
		opts.Cold = freshProcessCold
		opts.Warm = freshProcessWarm
		out, err = e.Run(opts)
	}
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}

// freshProcessCold times one cold D_prefix call on D_n in a fresh process by
// re-executing this binary with -coldprobe. Within a warm process the Go
// runtime recycles coroutine stacks and heap spans, so only a fresh process
// measures the true first-call cost the Runtime caches amortize away.
func freshProcessCold(n int) (time.Duration, error) {
	return probe("cold", "-coldprobe", strconv.Itoa(n))
}

// freshProcessWarm measures the median warm D_prefix ns/call on D_n in a
// fresh subprocess via -warmprobe, so cold and warm run in identical pristine
// processes: a process that has already swept smaller orders carries their
// heap into the collector's pacing and inflates warm samples by several
// percent.
func freshProcessWarm(n, runs int) (time.Duration, error) {
	return probe("warm", "-warmprobe", strconv.Itoa(n), "-runs", strconv.Itoa(runs))
}

func probe(kind string, args ...string) (time.Duration, error) {
	exe, err := os.Executable()
	if err != nil {
		return 0, err
	}
	raw, err := exec.Command(exe, args...).Output()
	if err != nil {
		return 0, fmt.Errorf("%s probe subprocess: %w", kind, err)
	}
	ns, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s probe output %q: %w", kind, raw, err)
	}
	return time.Duration(ns), nil
}
